#include "isomer/workload/synth.hpp"

#include <string>
#include <unordered_map>

#include "isomer/common/error.hpp"
#include "isomer/schema/integrator.hpp"

namespace isomer {

namespace {

std::string class_name(std::size_t k) { return "C" + std::to_string(k + 1); }
std::string pred_attr(std::size_t j) { return "p" + std::to_string(j); }
std::string target_attr(std::size_t j) { return "t" + std::to_string(j); }
std::string extra_attr(std::size_t j) { return "x" + std::to_string(j); }

/// One synthetic real-world entity of one class.
struct Entity {
  std::vector<Value> pred_values;    ///< canonical p_j values
  std::vector<Value> target_values;  ///< root class only
  std::vector<Value> extra_values;
  std::int64_t identity = 0;
  std::optional<std::size_t> ref;    ///< referenced entity of the next class
  std::vector<DbId> dbs;             ///< databases holding a constituent
};

}  // namespace

SynthFederation materialize_sample(const SampleParams& sample,
                                   std::size_t extra_attrs) {
  expects(sample.n_db >= 1, "sample needs at least one database");
  expects(!sample.classes.empty(), "sample needs at least one class");
  Rng rng(sample.materialize_seed);

  const std::size_t n_classes = sample.classes.size();
  std::vector<DbId> db_ids;
  for (std::size_t i = 0; i < sample.n_db; ++i)
    db_ids.push_back(DbId{static_cast<std::uint16_t>(i + 1)});

  // ---- Draw the entity universe, class by class (children first so the
  // parents can reference them).
  std::vector<std::vector<Entity>> entities(n_classes);
  for (std::size_t k = n_classes; k-- > 0;) {
    const SampleParams::PerClass& cls = sample.classes[k];
    std::vector<std::int64_t> quota;
    for (const auto& db : cls.dbs) quota.push_back(db.n_objects);

    // Fraction of *entities* that span two databases so that the fraction
    // of *objects* with isomers equals R_iso (pairs hold two objects).
    const double paired_entities =
        sample.iso_ratio / (2.0 - sample.iso_ratio);

    std::vector<Entity>& pool = entities[k];
    std::int64_t serial = 0;
    while (true) {
      std::vector<std::size_t> open;
      for (std::size_t i = 0; i < quota.size(); ++i)
        if (quota[i] > 0) open.push_back(i);
      if (open.empty()) break;

      Entity entity;
      entity.identity = ++serial;
      const bool pair = open.size() >= 2 && rng.bernoulli(paired_entities);
      if (pair) {
        const auto picks = rng.sample_indices(open.size(), 2);
        entity.dbs = {db_ids[open[picks[0]]], db_ids[open[picks[1]]]};
        --quota[open[picks[0]]];
        --quota[open[picks[1]]];
      } else {
        const std::size_t pick = open[rng.index(open.size())];
        entity.dbs = {db_ids[pick]};
        --quota[pick];
      }

      // Canonical values. Predicate attributes are zero-inflated: value 0
      // with the drawn selectivity, otherwise uniform in [1, 999].
      entity.pred_values.reserve(static_cast<std::size_t>(cls.n_preds));
      for (int j = 0; j < cls.n_preds; ++j)
        entity.pred_values.emplace_back(
            rng.bernoulli(cls.pred_selectivity)
                ? std::int64_t{0}
                : rng.uniform_int(1, 999));
      if (k == 0)
        for (int j = 0; j < sample.n_targets; ++j)
          entity.target_values.emplace_back(rng.uniform_int(0, 999));
      for (std::size_t j = 0; j < extra_attrs; ++j)
        entity.extra_values.emplace_back(rng.uniform_int(0, 999));

      if (k + 1 < n_classes && rng.bernoulli(cls.ref_ratio) &&
          !entities[k + 1].empty())
        entity.ref = rng.index(entities[k + 1].size());

      pool.push_back(std::move(entity));
    }
  }

  // ---- Component schemas.
  std::vector<std::unique_ptr<ComponentDatabase>> databases;
  for (std::size_t i = 0; i < sample.n_db; ++i) {
    ComponentSchema schema(db_ids[i], "DB" + std::to_string(i + 1));
    for (std::size_t k = 0; k < n_classes; ++k) {
      const SampleParams::PerClass& cls = sample.classes[k];
      ClassDef def(class_name(k));
      def.add_attribute("id", PrimType::Int);
      for (const std::size_t j : cls.dbs[i].present_preds)
        def.add_attribute(pred_attr(j), PrimType::Int);
      if (k == 0)
        for (int j = 0; j < sample.n_targets; ++j)
          def.add_attribute(target_attr(static_cast<std::size_t>(j)),
                            PrimType::Int);
      for (std::size_t j = 0; j < extra_attrs; ++j)
        def.add_attribute(extra_attr(j), PrimType::Int);
      if (k + 1 < n_classes)
        def.add_attribute("ref", ComplexType{class_name(k + 1)});
      schema.add_class(std::move(def));
    }
    schema.validate();
    databases.push_back(std::make_unique<ComponentDatabase>(std::move(schema)));
  }

  // ---- Objects, children first so references resolve.
  // loids[k][entity index] -> per-db LOid.
  std::vector<std::vector<std::unordered_map<std::uint16_t, LOid>>> loids(
      n_classes);
  for (std::size_t k = n_classes; k-- > 0;) {
    const SampleParams::PerClass& cls = sample.classes[k];
    loids[k].resize(entities[k].size());
    // Pre-size every (db, class) extent for its object quota so the bulk
    // load below never rehashes or reallocates mid-insert.
    for (std::size_t i = 0; i < cls.dbs.size() && i < sample.n_db; ++i)
      if (cls.dbs[i].n_objects > 0)
        databases[i]->reserve(class_name(k),
                              static_cast<std::size_t>(cls.dbs[i].n_objects));
    for (std::size_t e = 0; e < entities[k].size(); ++e) {
      const Entity& entity = entities[k][e];
      for (const DbId db : entity.dbs) {
        const std::size_t i = static_cast<std::size_t>(db.value() - 1);
        ComponentDatabase& database = *databases[i];
        std::vector<NamedValue> values;
        values.emplace_back("id", Value(entity.identity));

        // Present predicate attributes, with the R_m null injection: when
        // the database defines every predicate attribute, a fraction R_m of
        // objects get one of them nulled. Under the MCAR mechanism (the
        // default — byte-identical to the original generator) the draw is
        // independent of everything else; under MAR it conditions on the
        // stored covariate x0: lower-half objects get double the rate,
        // upper-half none — same marginal rate, missingness predictable
        // from an observable.
        const auto& present = cls.dbs[i].present_preds;
        std::optional<std::size_t> null_slot;
        if (!present.empty() && cls.dbs[i].extra_missing > 0) {
          double rate = cls.dbs[i].extra_missing;
          if (sample.missing_mechanism == MissingMechanism::MAR &&
              !entity.extra_values.empty())
            rate = entity.extra_values[0].as_int() < 500
                       ? std::min(1.0, 2.0 * rate)
                       : 0.0;
          if (rate > 0 && rng.bernoulli(rate))
            null_slot = rng.index(present.size());
        }
        for (std::size_t s = 0; s < present.size(); ++s) {
          if (null_slot && *null_slot == s) continue;  // stays null
          const std::size_t j = present[s];
          values.emplace_back(pred_attr(j), entity.pred_values[j]);
        }

        if (k == 0)
          for (std::size_t j = 0; j < entity.target_values.size(); ++j)
            values.emplace_back(target_attr(j), entity.target_values[j]);
        for (std::size_t j = 0; j < entity.extra_values.size(); ++j)
          values.emplace_back(extra_attr(j), entity.extra_values[j]);

        if (entity.ref) {
          const auto& child_loids = loids[k + 1][*entity.ref];
          const auto it = child_loids.find(db.value());
          if (it != child_loids.end())
            values.emplace_back("ref", Value(LocalRef{it->second}));
          // Child has no constituent here: the reference stays null and the
          // missing data must come from this object's isomers.
        }
        loids[k][e].emplace(db.value(),
                            database.insert(class_name(k), values));
      }
    }
  }

  // ---- GOid tables.
  GoidTable goids;
  {
    std::size_t total_objects = 0;
    for (std::size_t k = 0; k < n_classes; ++k)
      for (const auto& per_entity : loids[k]) total_objects += per_entity.size();
    goids.reserve(total_objects);
  }
  for (std::size_t k = 0; k < n_classes; ++k)
    for (std::size_t e = 0; e < entities[k].size(); ++e) {
      std::vector<LOid> isomers;
      for (const auto& [db, loid] : loids[k][e]) isomers.push_back(loid);
      goids.register_entity(class_name(k), isomers);
    }

  // ---- Global schema by integration.
  IntegrationSpec spec;
  for (std::size_t k = 0; k < n_classes; ++k) {
    ClassSpec& cls_spec = spec.add_class(class_name(k));
    for (const DbId db : db_ids)
      cls_spec.constituents.push_back(Constituent{db, class_name(k)});
    cls_spec.identity_attribute = "id";
  }
  std::vector<const ComponentSchema*> schemas;
  for (const auto& database : databases) schemas.push_back(&database->schema());
  GlobalSchema schema = integrate(schemas, spec);

  // ---- The query.
  SynthFederation out;
  out.query.range_class = class_name(0);
  for (int j = 0; j < sample.n_targets; ++j)
    out.query.targets.push_back(
        PathExpr::parse(target_attr(static_cast<std::size_t>(j))));
  for (std::size_t k = 0; k < n_classes; ++k) {
    const SampleParams::PerClass& cls = sample.classes[k];
    for (int j = 0; j < cls.n_preds; ++j) {
      std::vector<std::string> steps(k, "ref");
      steps.push_back(pred_attr(static_cast<std::size_t>(j)));
      out.query.predicates.push_back(Predicate{
          PathExpr(std::move(steps)), CompOp::Eq, Value(std::int64_t{0})});
    }
  }

  out.federation = std::make_unique<Federation>(
      std::move(schema), std::move(databases), std::move(goids));
  return out;
}

}  // namespace isomer
