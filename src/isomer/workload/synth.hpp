// Synthetic federation materializer.
//
// Turns a drawn SampleParams (Table 2) into a concrete federation — schemas,
// objects, GOid tables — plus the global query, such that the realized
// statistics match the drawn parameters:
//
//  * the involved global classes form a composition chain C1 -> C2 -> ...
//    via a `ref` attribute, all constituents present in every database;
//  * class k carries N_p^k predicate attributes; database i defines only
//    the drawn subset (the rest are schema-level missing attributes there);
//  * predicate attributes are zero-inflated so that `p_j = 0` selects with
//    exactly the drawn per-predicate selectivity — equality predicates,
//    which also makes them signature-screenable for the BLS/PLS variants;
//  * a fraction R_iso of objects belong to two-database entities (Table 1's
//    N_iso = 2); isomeric objects carry identical canonical values, so the
//    generated federation always passes Federation::check_consistency;
//  * references are entity-level (isomeric parents reference isomeric
//    children); a parent's reference is non-null with probability R_r and
//    resolves to the child's constituent in the same database when one
//    exists (null otherwise — a genuine source of maybe results).
#pragma once

#include <memory>

#include "isomer/federation/federation.hpp"
#include "isomer/query/query.hpp"
#include "isomer/workload/params.hpp"

namespace isomer {

struct SynthFederation {
  std::unique_ptr<Federation> federation;
  GlobalQuery query;
};

/// Materializes one sample. Deterministic in sample.materialize_seed.
[[nodiscard]] SynthFederation materialize_sample(const SampleParams& sample,
                                                 std::size_t extra_attrs = 3);

}  // namespace isomer
