// Deterministic textual digest of a StrategyReport — the golden format of
// the operator-pipeline parity suite (test_operator_parity.cpp).
//
// Every cost figure the simulator produces is printed in full precision and
// the answer rows are folded into an FNV-1a hash, so a golden line pins the
// *entire* observable outcome of one execution: a refactor that moves a
// single comparison, reorders two simulator events, or changes one wire
// byte produces a different line. Goldens are captured once from a known
// reference build (see the regeneration recipe in test_operator_parity.cpp)
// and checked in; the suite then proves any executor restructuring is
// bitwise-invisible.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "isomer/core/strategy.hpp"

namespace isomer::testing {

inline std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Hash of the logical answer: every row's entity, status, unavailable tag
/// and printed target values, in the report's (normalized) row order.
inline std::uint64_t result_hash(const QueryResult& result) {
  std::ostringstream os;
  for (const ResultRow& row : result.rows) {
    os << row.entity.value() << '|' << to_string(row.status) << '|'
       << row.unavailable;
    for (const Value& value : row.targets) os << '|' << value;
    os << ';';
  }
  return fnv1a(os.str());
}

/// One golden line: the case label followed by every scalar cost figure and
/// the answer hash. Field order is part of the golden format — append-only.
inline std::string report_digest_line(const std::string& label,
                                      const StrategyReport& report) {
  std::ostringstream os;
  os << label << " resp=" << report.response_ns
     << " total=" << report.total_ns << " cpu=" << report.cpu_ns
     << " disk=" << report.disk_ns << " net=" << report.net_ns
     << " bytes=" << report.bytes_transferred
     << " msgs=" << report.messages << " scan=" << report.work.objects_scanned
     << " fetch=" << report.work.objects_fetched
     << " cmp=" << report.work.comparisons
     << " probe=" << report.work.table_probes
     << " prim=" << report.work.prim_slots
     << " ref=" << report.work.ref_slots << " dead=";
  if (report.unavailable_sites.empty()) {
    os << '-';
  } else {
    for (std::size_t i = 0; i < report.unavailable_sites.size(); ++i)
      os << (i > 0 ? "+" : "") << report.unavailable_sites[i].value();
  }
  os << " retries=" << report.retries
     << " failed=" << report.failed_messages << " rows=" << std::hex
     << result_hash(report.result);
  return os.str();
}

}  // namespace isomer::testing
