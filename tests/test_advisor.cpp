// The sampling strategy advisor, validated against the simulator.
#include <gtest/gtest.h>

#include "isomer/analytic/advisor.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

TEST(Advisor, RunsOnThePaperExample) {
  const paper::UniversityExample example = paper::make_university();
  const Advice advice = advise_strategy(*example.federation, paper::q1());
  ASSERT_EQ(advice.estimates.size(), 3u);
  EXPECT_EQ(advice.estimates[0].kind, StrategyKind::CA);
  EXPECT_EQ(advice.estimates[1].kind, StrategyKind::BL);
  EXPECT_EQ(advice.estimates[2].kind, StrategyKind::PL);
  for (const StrategyEstimate& estimate : advice.estimates) {
    EXPECT_GT(estimate.total_s, 0.0);
    EXPECT_GT(estimate.response_s, 0.0);
  }
  EXPECT_FALSE(advice.rationale.empty());
  EXPECT_EQ(advice.stats.dbs.size(), 2u);  // DB1 and DB2 hold Students
}

TEST(Advisor, StatsReflectTheRunningExample) {
  const paper::UniversityExample example = paper::make_university();
  const Advice advice = advise_strategy(*example.federation, paper::q1());
  // DB1: all 3 students survive locally (sample = whole extent of 3).
  const auto& db1 = advice.stats.dbs[0];
  EXPECT_EQ(db1.db, DbId{1});
  EXPECT_EQ(db1.root_objects, 3u);
  EXPECT_EQ(db1.sampled, 3u);
  EXPECT_DOUBLE_EQ(db1.survive_rate, 1.0);
  // DB2: only Hedy survives of 3.
  const auto& db2 = advice.stats.dbs[1];
  EXPECT_NEAR(db2.survive_rate, 1.0 / 3.0, 1e-12);
}

TEST(Advisor, EstimatesTrackTheSimulator) {
  Rng rng(91);
  ParamConfig config;
  config.n_objects = {500, 700};
  StrategyOptions exec;
  exec.record_trace = false;
  int total_hits = 0;
  const int n = 8;
  for (int s = 0; s < n; ++s) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    const Advice advice = advise_strategy(*synth.federation, synth.query);
    // (a) each estimate within 40% of the DES figure;
    for (const StrategyEstimate& estimate : advice.estimates) {
      const StrategyReport report = execute_strategy(
          estimate.kind, *synth.federation, synth.query, exec);
      EXPECT_NEAR(estimate.total_s, to_seconds(report.total_ns),
                  0.40 * to_seconds(report.total_ns))
          << to_string(estimate.kind) << " sample " << s;
    }
    // (b) the total-time recommendation matches the DES winner.
    double best = 1e300;
    StrategyKind winner = StrategyKind::CA;
    for (const StrategyKind kind : kPaperStrategies) {
      const double t = to_seconds(
          execute_strategy(kind, *synth.federation, synth.query, exec)
              .total_ns);
      if (t < best) {
        best = t;
        winner = kind;
      }
    }
    if (winner == advice.best_total) ++total_hits;
  }
  EXPECT_GE(total_hits, n - 1);
}

TEST(Advisor, SamplingIsDeterministicInSeed) {
  Rng rng(92);
  ParamConfig config;
  config.n_objects = {200, 300};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  const Advice a = advise_strategy(*synth.federation, synth.query);
  const Advice b = advise_strategy(*synth.federation, synth.query);
  for (std::size_t i = 0; i < a.estimates.size(); ++i)
    EXPECT_DOUBLE_EQ(a.estimates[i].total_s, b.estimates[i].total_s);
}

TEST(Advisor, AdviceIdenticalAcrossJobCounts) {
  // Per-database profiling runs on AdvisorOptions::jobs threads; each site
  // samples from its own derived RNG stream, so the thread count must not
  // move a single estimate or statistic.
  Rng rng(93);
  ParamConfig config;
  config.n_objects = {200, 300};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  AdvisorOptions serial_opts;
  serial_opts.jobs = 1;
  const Advice serial =
      advise_strategy(*synth.federation, synth.query, serial_opts);
  for (const int jobs : {2, 4}) {
    AdvisorOptions parallel_opts;
    parallel_opts.jobs = jobs;
    const Advice parallel =
        advise_strategy(*synth.federation, synth.query, parallel_opts);
    ASSERT_EQ(serial.estimates.size(), parallel.estimates.size());
    for (std::size_t i = 0; i < serial.estimates.size(); ++i) {
      EXPECT_EQ(serial.estimates[i].total_s, parallel.estimates[i].total_s);
      EXPECT_EQ(serial.estimates[i].response_s,
                parallel.estimates[i].response_s);
      EXPECT_EQ(serial.estimates[i].bytes, parallel.estimates[i].bytes);
    }
    ASSERT_EQ(serial.stats.dbs.size(), parallel.stats.dbs.size());
    for (std::size_t i = 0; i < serial.stats.dbs.size(); ++i) {
      EXPECT_EQ(serial.stats.dbs[i].survive_rate,
                parallel.stats.dbs[i].survive_rate);
      EXPECT_EQ(serial.stats.dbs[i].fetches_per_object,
                parallel.stats.dbs[i].fetches_per_object);
    }
    EXPECT_EQ(serial.best_total, parallel.best_total);
    EXPECT_EQ(serial.best_response, parallel.best_response);
  }
}

TEST(Advisor, SampleSizeCapsAtExtent) {
  const paper::UniversityExample example = paper::make_university();
  AdvisorOptions options;
  options.sample_size = 1000;  // far more than 3 students
  const Advice advice =
      advise_strategy(*example.federation, paper::q1(), options);
  EXPECT_EQ(advice.stats.dbs[0].sampled, 3u);
}

TEST(Advisor, RejectsMalformedQueries) {
  const paper::UniversityExample example = paper::make_university();
  GlobalQuery bad;
  bad.range_class = "Student";
  bad.where("nope", CompOp::Eq, 1);
  EXPECT_THROW((void)advise_strategy(*example.federation, bad), QueryError);
}

}  // namespace
}  // namespace isomer
