// The closed-form analytic model, cross-validated against the simulator.
#include <gtest/gtest.h>

#include "isomer/analytic/model.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

class AnalyticCrossval : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyticCrossval, TotalsTrackTheSimulatorWithin35Percent) {
  Rng rng(GetParam());
  ParamConfig config;
  config.n_objects = {600, 800};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  StrategyOptions options;
  options.record_trace = false;

  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport des =
        execute_strategy(kind, *synth.federation, synth.query, options);
    const AnalyticEstimate model = estimate_strategy(kind, sample);
    const double des_s = to_seconds(des.total_ns);
    EXPECT_NEAR(model.total_s, des_s, 0.35 * des_s)
        << to_string(kind) << " diverged on seed " << GetParam();
    EXPECT_GT(model.response_s, 0.0);
    EXPECT_LE(model.response_s, model.total_s * 1.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticCrossval,
                         ::testing::Range<std::uint64_t>(100, 115));

TEST(Analytic, PredictsCaVsBlOrdering) {
  Rng rng(55);
  ParamConfig config;
  config.n_objects = {600, 800};
  StrategyOptions options;
  options.record_trace = false;
  int agree = 0;
  const int n = 12;
  for (int s = 0; s < n; ++s) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    const double des_ca = to_seconds(
        execute_strategy(StrategyKind::CA, *synth.federation, synth.query,
                         options)
            .total_ns);
    const double des_bl = to_seconds(
        execute_strategy(StrategyKind::BL, *synth.federation, synth.query,
                         options)
            .total_ns);
    const double model_ca = estimate_strategy(StrategyKind::CA, sample).total_s;
    const double model_bl = estimate_strategy(StrategyKind::BL, sample).total_s;
    if ((des_ca > des_bl) == (model_ca > model_bl)) ++agree;
  }
  EXPECT_GE(agree, n - 2);
}

TEST(Analytic, MonotoneInObjectCount) {
  ParamConfig config;
  Rng rng(56);
  SampleParams sample = draw_sample(config, rng);
  const auto scale_to = [&](int n) {
    SampleParams scaled = sample;
    for (auto& cls : scaled.classes)
      for (auto& db : cls.dbs) db.n_objects = n;
    return scaled;
  };
  for (const StrategyKind kind : kPaperStrategies) {
    double prev = 0;
    for (const int n : {1000, 2000, 4000, 8000}) {
      const double total = estimate_strategy(kind, scale_to(n)).total_s;
      EXPECT_GT(total, prev) << to_string(kind);
      prev = total;
    }
  }
}

TEST(Analytic, PlCostsAtLeastBl) {
  ParamConfig config;
  Rng rng(57);
  for (int s = 0; s < 30; ++s) {
    const SampleParams sample = draw_sample(config, rng);
    EXPECT_GE(estimate_strategy(StrategyKind::PL, sample).total_s,
              estimate_strategy(StrategyKind::BL, sample).total_s * 0.999);
  }
}

TEST(Analytic, SignatureVariantsShipFewerBytes) {
  ParamConfig config;
  Rng rng(58);
  for (int s = 0; s < 30; ++s) {
    const SampleParams sample = draw_sample(config, rng);
    EXPECT_LE(estimate_strategy(StrategyKind::BLS, sample).bytes,
              estimate_strategy(StrategyKind::BL, sample).bytes * 1.0001);
  }
}

TEST(Analytic, RejectsEmptySample) {
  SampleParams empty;
  EXPECT_THROW((void)estimate_strategy(StrategyKind::CA, empty),
               ContractViolation);
}

}  // namespace
}  // namespace isomer
