// Catalog serialization: round-trips, format details, and error handling.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/io/catalog.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

TEST(Catalog, RoundTripsTheUniversityFederation) {
  const paper::UniversityExample example = paper::make_university();
  const std::string text = save_catalog(*example.federation);
  const std::unique_ptr<Federation> reloaded = load_catalog(text);

  // Identical structure...
  EXPECT_EQ(reloaded->db_ids(), example.federation->db_ids());
  EXPECT_EQ(reloaded->goids().entity_count(),
            example.federation->goids().entity_count());
  // ...and a second save is byte-identical (canonical form).
  EXPECT_EQ(save_catalog(*reloaded), text);
}

TEST(Catalog, ReloadedFederationAnswersIdentically) {
  const paper::UniversityExample example = paper::make_university();
  const std::unique_ptr<Federation> reloaded =
      load_catalog(save_catalog(*example.federation));
  const GlobalQuery q1 = paper::q1();
  EXPECT_EQ(reference_answer(*reloaded, q1),
            reference_answer(*example.federation, q1));
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport a = execute_strategy(kind, *reloaded, q1);
    const StrategyReport b =
        execute_strategy(kind, *example.federation, q1);
    EXPECT_EQ(a.result, b.result) << to_string(kind);
    EXPECT_EQ(a.total_ns, b.total_ns)
        << to_string(kind) << ": identical data must cost identically";
  }
}

TEST(Catalog, PreservesLOidsExactly) {
  const paper::UniversityExample example = paper::make_university();
  const std::unique_ptr<Federation> reloaded =
      load_catalog(save_catalog(*example.federation));
  // Spot-check a few notable objects by their original identifiers.
  EXPECT_EQ(reloaded->db(DbId{1}).class_of(example.ids.s1), "Student");
  EXPECT_EQ(reloaded->db(DbId{2}).class_of(example.ids.a1p), "Address");
  EXPECT_EQ(reloaded->goids().goid_of(example.ids.s1),
            example.federation->goids().goid_of(example.ids.s1));
}

TEST(Catalog, PreservesValueKindsAndEscapes) {
  ComponentSchema schema(DbId{1}, "odd \"name\" with \\slashes");
  schema.add_class("T")
      .add_attribute("b", PrimType::Bool)
      .add_attribute("i", PrimType::Int)
      .add_attribute("r", PrimType::Real)
      .add_attribute("s", PrimType::String)
      .add_attribute("others", ComplexType{"T", true});
  auto db = std::make_unique<ComponentDatabase>(std::move(schema));
  const LOid first = db->insert("T", {{"b", true},
                                      {"i", -42},
                                      {"r", 0.1},
                                      {"s", "quote \" and \\ slash"}});
  const LOid second =
      db->insert("T", {{"others", LocalRefSet{{first}}}});

  GlobalSchema global;
  GlobalClass cls("T", {{DbId{1}, "T"}});
  for (const char* name : {"b", "i", "r", "s"}) {
    cls.mutable_def().add_attribute(
        name, db->schema().cls("T").attribute(
                  *db->schema().cls("T").find_attribute(name)).type);
  }
  cls.mutable_def().add_attribute("others", ComplexType{"T", true});
  cls.pad_local_names();
  for (std::size_t a = 0; a < cls.def().attribute_count(); ++a)
    cls.bind_local_attr(0, a, cls.def().attribute(a).name);
  global.add_class(std::move(cls));
  GoidTable goids;
  (void)goids.register_entity("T", {first});
  (void)goids.register_entity("T", {second});
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(db));
  const Federation federation(std::move(global), std::move(dbs),
                              std::move(goids));

  const std::unique_ptr<Federation> reloaded =
      load_catalog(save_catalog(federation));
  const Object* obj = reloaded->db(DbId{1}).fetch(first);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value(0), Value(true));
  EXPECT_EQ(obj->value(1), Value(-42));
  EXPECT_EQ(obj->value(2), Value(0.1));
  EXPECT_EQ(obj->value(3), Value("quote \" and \\ slash"));
  EXPECT_EQ(reloaded->db(DbId{1}).fetch(second)->value(4),
            Value(LocalRefSet{{first}}));
  EXPECT_EQ(reloaded->db(DbId{1}).schema().db_name(),
            "odd \"name\" with \\slashes");
}

TEST(Catalog, RoundTripsRandomFederations) {
  Rng rng(333);
  ParamConfig config;
  config.n_objects = {20, 40};
  for (int trial = 0; trial < 5; ++trial) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    const std::string text = save_catalog(*synth.federation);
    const std::unique_ptr<Federation> reloaded = load_catalog(text);
    EXPECT_EQ(save_catalog(*reloaded), text);
    EXPECT_EQ(reference_answer(*reloaded, synth.query),
              reference_answer(*synth.federation, synth.query));
  }
}

TEST(Catalog, FileRoundTrip) {
  const paper::UniversityExample example = paper::make_university();
  const std::string path = ::testing::TempDir() + "university.catalog";
  save_catalog_file(*example.federation, path);
  const std::unique_ptr<Federation> reloaded = load_catalog_file(path);
  EXPECT_EQ(save_catalog(*reloaded), save_catalog(*example.federation));
  EXPECT_THROW((void)load_catalog_file("/nonexistent/nope.catalog"),
               CatalogError);
}

TEST(Catalog, MalformedInputs) {
  EXPECT_THROW((void)load_catalog("bogus directive"), CatalogError);
  EXPECT_THROW((void)load_catalog("class \"X\"\n"), CatalogError)
      << "class outside a database";
  EXPECT_THROW((void)load_catalog("database 1 \"A\"\nobject \"X\" 1\n"),
               Error)
      << "object of an undeclared class";
  EXPECT_THROW((void)load_catalog("database 1 \"A\"\nclass \"C\"\n"
                                  "object \"C\" 7\n"),
               CatalogError)
      << "out-of-order object ids";
  EXPECT_THROW((void)load_catalog("global \"G\"\n"), CatalogError)
      << "global class without constituents";
  EXPECT_THROW((void)load_catalog("entity \"G\" nonsense\n"), CatalogError);
  EXPECT_THROW((void)load_catalog("database 1 \"A\nbroken"), CatalogError)
      << "unterminated string";
}

TEST(Catalog, HandEditedCatalogGetsFederationValidation) {
  // A catalog whose entity references a nonexistent object passes parsing
  // but fails the Federation constructor's integrity checks.
  const std::string text =
      "database 1 \"A\"\n"
      "class \"C\"\n"
      "  attr \"k\" int\n"
      "object \"C\" 1\n"
      "  \"k\" = int 5\n"
      "end database\n"
      "global \"C\"\n"
      "  attr \"k\" int\n"
      "  constituent 1 \"C\"\n"
      "    bind \"k\" \"k\"\n"
      "entity \"C\" 1:99\n";
  EXPECT_THROW((void)load_catalog(text), FederationError);
}

}  // namespace
}  // namespace isomer
