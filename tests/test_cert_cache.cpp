// Cross-query certificate cache (core/cert_cache.hpp): accounting, epoch
// coherence against real extent mutation, equivalence of the sharded
// open-addressed layout with a reference map, and the end-to-end serving
// contract — a cached run answers every submission identically to a cold
// one while spending no more wire, and a warm second wave spends strictly
// less than the cold first one.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isomer/common/rng.hpp"
#include "isomer/core/cert_cache.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/serve/server.hpp"
#include "isomer/store/database.hpp"
#include "isomer/workload/arrivals.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

using serve::ServeOptions;
using serve::ServeReport;
using serve::ServeRequest;
using serve::ServeSpec;

TEST(CertCache, HitMissAndStaleAccounting) {
  CertCache cache;
  const GOid item{42};
  const std::uint64_t sig = 0xfeedULL;

  EXPECT_FALSE(cache.lookup(item, sig, 1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  cache.insert(item, sig, 1, Truth::True);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);

  const auto hit = cache.lookup(item, sig, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(is_true(*hit));
  EXPECT_EQ(cache.stats().hits, 1u);

  // Same item, different signature: a different atom, not a hit.
  EXPECT_FALSE(cache.lookup(item, sig ^ 1, 1).has_value());
  EXPECT_EQ(cache.stats().misses, 2u);

  // Wrong epoch: a miss that found a resident entry — counted stale too.
  EXPECT_FALSE(cache.lookup(item, sig, 2).has_value());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().stale, 1u);

  // Refreshing the certificate overwrites in place: no growth, and the new
  // epoch hits while the old one is stale.
  cache.insert(item, sig, 2, Truth::False);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 2u);
  const auto refreshed = cache.lookup(item, sig, 2);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_TRUE(is_false(*refreshed));
  EXPECT_FALSE(cache.lookup(item, sig, 1).has_value());

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(item, sig, 2).has_value());
}

TEST(CertCache, ExtentMutationMovesTheEpochAndInvalidates) {
  // The full coherence chain: an insert anywhere bumps Extent::version(),
  // which moves ComponentDatabase::mutation_epoch() (and so
  // Federation::epoch()), which turns every certificate stamped with the
  // old epoch into a stale miss.
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class("C").add_attribute("v", PrimType::Real);
  ComponentDatabase db(std::move(schema));
  db.insert("C", {{"v", Value(1.0)}});

  const std::uint64_t before = db.mutation_epoch();
  const std::uint64_t extent_before = db.extent("C").version();

  CertCache cache;
  cache.insert(GOid{1}, 0xabcULL, before, Truth::True);
  ASSERT_TRUE(cache.lookup(GOid{1}, 0xabcULL, before).has_value());

  db.insert("C", {{"v", Value(2.0)}});
  EXPECT_GT(db.extent("C").version(), extent_before);
  const std::uint64_t after = db.mutation_epoch();
  EXPECT_GT(after, before);

  // The certificate was derived from pre-mutation data: current-epoch
  // lookups must refuse it.
  EXPECT_FALSE(cache.lookup(GOid{1}, 0xabcULL, after).has_value());
  EXPECT_EQ(cache.stats().stale, 1u);

  // Re-certifying under the new epoch restores hits without growing.
  cache.insert(GOid{1}, 0xabcULL, after, Truth::True);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup(GOid{1}, 0xabcULL, after).has_value());
}

TEST(CertCache, MatchesReferenceMapAcrossRandomOperations) {
  // The sharded open-addressed table must be observationally equal to the
  // obvious reference: a map keyed (goid, signature) holding (epoch, truth),
  // where a lookup hits iff the key exists at the same epoch. Keys are drawn
  // from a small universe so overwrites, epoch bumps and probe collisions
  // all happen; the cache is unbounded here (eviction is a capacity policy,
  // not part of the map contract).
  struct Entry {
    std::uint64_t epoch;
    Truth truth;
  };
  using RefKey = std::pair<std::uint64_t, std::uint64_t>;
  struct RefHash {
    std::size_t operator()(const RefKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.first * 31 + k.second);
    }
  };
  constexpr Truth kTruths[] = {Truth::False, Truth::Unknown, Truth::True};

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(derive_stream(515, seed));
    CertCache cache;
    std::unordered_map<RefKey, Entry, RefHash> reference;
    std::uint64_t expected_hits = 0, expected_misses = 0;
    for (int op = 0; op < 20'000; ++op) {
      const GOid item{1 + rng.index(64)};
      const std::uint64_t sig = 0x9e3779b97f4a7c15ULL * (1 + rng.index(8));
      const std::uint64_t epoch = 1 + rng.index(3);
      const RefKey key{item.value(), sig};
      if (rng.bernoulli(0.4)) {
        const Truth truth = kTruths[rng.index(3)];
        cache.insert(item, sig, epoch, truth);
        reference[key] = Entry{epoch, truth};
      } else {
        const auto got = cache.lookup(item, sig, epoch);
        const auto it = reference.find(key);
        if (it != reference.end() && it->second.epoch == epoch) {
          ++expected_hits;
          ASSERT_TRUE(got.has_value()) << "seed " << seed << " op " << op;
          ASSERT_EQ(*got, it->second.truth) << "seed " << seed << " op " << op;
        } else {
          ++expected_misses;
          ASSERT_FALSE(got.has_value()) << "seed " << seed << " op " << op;
        }
      }
    }
    EXPECT_EQ(cache.size(), reference.size()) << "seed " << seed;
    EXPECT_EQ(cache.stats().hits, expected_hits) << "seed " << seed;
    EXPECT_EQ(cache.stats().misses, expected_misses) << "seed " << seed;
  }
}

TEST(CertCache, CapacityCapEvictsDeterministically) {
  // The cap is enforced by clearing the receiving shard — coarse but a pure
  // function of the operation sequence. Filling far past the cap must
  // record evictions, keep the table bounded well below the inserted count,
  // and never corrupt surviving entries (every lookup is either a correct
  // hit or a miss; the reference-equivalence test covers exactness).
  CertCache cache(64);
  EXPECT_EQ(cache.max_entries(), 64u);
  for (std::uint64_t i = 1; i <= 1000; ++i)
    cache.insert(GOid{i}, i * 0xbf58476d1ce4e5b9ULL, 1, Truth::True);
  EXPECT_GT(cache.stats().evicted, 0u);
  EXPECT_LT(cache.size(), 200u);  // 64 + one shard's worth of slack at most
  std::uint64_t resident = 0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    const auto got = cache.lookup(GOid{i}, i * 0xbf58476d1ce4e5b9ULL, 1);
    if (!got.has_value()) continue;
    ++resident;
    EXPECT_TRUE(is_true(*got));
  }
  EXPECT_EQ(resident, cache.size());

  // Replaying the identical sequence reproduces the identical cache.
  CertCache replay(64);
  for (std::uint64_t i = 1; i <= 1000; ++i)
    replay.insert(GOid{i}, i * 0xbf58476d1ce4e5b9ULL, 1, Truth::True);
  EXPECT_EQ(replay.size(), cache.size());
  EXPECT_EQ(replay.stats().evicted, cache.stats().evicted);
}

TEST(CertCache, TraceSpansNameHitsMissesAndDischarge) {
  // The cert.* markers the trace layer documents (docs/TRACING.md) must
  // actually reach an attached TraceSession: a cold cached run consults the
  // cache and misses (cert.miss/<n>) and certifies with the residual-atom
  // histogram (cert.discharge atoms=...); a warm replay hits (cert.hit/<n>).
  // Without a cache no Phase::Cert span may ever be recorded.
  const paper::UniversityExample example = paper::make_university();

  const auto run = [&](CertCache* cache, obs::TraceSession* session) {
    StrategyOptions options;
    options.record_trace = false;
    options.cert_cache = cache;
    options.trace_session = session;
    return execute_strategy(StrategyKind::BL, *example.federation,
                            paper::q1(), options);
  };
  const auto count_steps = [](const obs::TraceSession& session,
                              const std::string& prefix) {
    std::size_t n = 0;
    for (const obs::PhaseSpan& span : session.spans())
      if (span.phase == Phase::Cert && span.step.rfind(prefix, 0) == 0) ++n;
    return n;
  };

  obs::TraceSession uncached_session;
  (void)run(nullptr, &uncached_session);
  for (const obs::PhaseSpan& span : uncached_session.spans())
    EXPECT_NE(span.phase, Phase::Cert)
        << "no cache attached, but recorded '" << span.step << "'";

  CertCache cache;
  obs::TraceSession cold_session;
  (void)run(&cache, &cold_session);
  EXPECT_GT(count_steps(cold_session, "cert.miss/"), 0u)
      << "cold run must record its cache misses";
  EXPECT_EQ(count_steps(cold_session, "cert.hit/"), 0u);
  ASSERT_EQ(count_steps(cold_session, "cert.discharge"), 1u);
  for (const obs::PhaseSpan& span : cold_session.spans())
    if (span.phase == Phase::Cert && span.step.rfind("cert.discharge", 0) == 0)
      EXPECT_NE(span.step.find("atoms="), std::string::npos) << span.step;

  obs::TraceSession warm_session;
  (void)run(&cache, &warm_session);
  EXPECT_GT(count_steps(warm_session, "cert.hit/"), 0u)
      << "warm run must record its cache hits";
  EXPECT_EQ(count_steps(warm_session, "cert.miss/"), 0u)
      << "a fully warmed run never misses";
}

// ---- Serving-layer contract -------------------------------------------------

// Open loop only: the arrival schedule and per-submission pool picks are
// pre-drawn from spec.seed, so submission i runs the SAME query in every
// run regardless of execution speed. A closed loop would not do — there the
// interleaving of client resubmissions depends on completion times, which
// the cache changes, so per-index comparisons would mix different queries.
ServeSpec open_spec(std::size_t n, std::uint64_t seed) {
  ServeSpec spec;
  spec.mode = serve::ArrivalMode::Open;
  spec.rate_qps = 200;
  spec.n_queries = n;
  spec.queue_limit = 0;
  spec.site_inflight = 2;
  spec.seed = seed;
  return spec;
}

TEST(CertCacheServe, CachedRunsAnswerIdenticallyAndSpendNoMoreWire) {
  // 50 seeds, each a different derived query pool and arrival schedule. For
  // every seed the same workload runs cold (no cache) and then twice through
  // one shared cache; every submission's QueryResult — rows AND statuses —
  // must be identical, the cached waves must not spend more wire than the
  // cold run, and across all seeds the cache must actually hit.
  const paper::UniversityExample example = paper::make_university();
  std::uint64_t total_hits = 0;
  Bytes cold_wire = 0, wave1_wire = 0, wave2_wire = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(derive_stream(616, seed));
    const std::vector<GlobalQuery> queries =
        workload::derive_query_pool(paper::q1(), 3, rng);
    std::vector<ServeRequest> pool;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ServeRequest request;
      request.query = queries[i];
      request.kind = i % 2 == 0 ? StrategyKind::BL : StrategyKind::PL;
      request.predicted_cost_s = 1.0 + static_cast<double>(i);
      pool.push_back(std::move(request));
    }
    const ServeSpec spec = open_spec(8, seed);

    const ServeReport cold = serve::serve(*example.federation, pool, spec, {});
    EXPECT_EQ(cold.cert_hits, 0u) << "no cache, no hits";
    EXPECT_EQ(cold.cert_misses, 0u);

    CertCache cache;
    ServeOptions cached_options;
    cached_options.exec.cert_cache = &cache;
    const ServeReport wave1 =
        serve::serve(*example.federation, pool, spec, cached_options);
    const ServeReport wave2 =
        serve::serve(*example.federation, pool, spec, cached_options);

    ASSERT_EQ(wave1.outcomes.size(), cold.outcomes.size()) << "seed " << seed;
    ASSERT_EQ(wave2.outcomes.size(), cold.outcomes.size()) << "seed " << seed;
    for (std::size_t i = 0; i < cold.outcomes.size(); ++i) {
      ASSERT_EQ(wave1.outcomes[i].result, cold.outcomes[i].result)
          << "seed " << seed << " submission " << i;
      ASSERT_EQ(wave2.outcomes[i].result, cold.outcomes[i].result)
          << "seed " << seed << " submission " << i;
    }
    EXPECT_LE(wave1.bytes_transferred, cold.bytes_transferred)
        << "seed " << seed;
    EXPECT_LE(wave2.bytes_transferred, wave1.bytes_transferred)
        << "seed " << seed;
    // Σ per-submission cache accounting equals the report totals.
    std::uint64_t hit_sum = 0, miss_sum = 0;
    for (const serve::ServeOutcome& outcome : wave1.outcomes) {
      hit_sum += outcome.cert_hits;
      miss_sum += outcome.cert_misses;
    }
    EXPECT_EQ(hit_sum, wave1.cert_hits) << "seed " << seed;
    EXPECT_EQ(miss_sum, wave1.cert_misses) << "seed " << seed;

    total_hits += wave1.cert_hits + wave2.cert_hits;
    cold_wire += cold.bytes_transferred;
    wave1_wire += wave1.bytes_transferred;
    wave2_wire += wave2.bytes_transferred;
  }
  EXPECT_GT(total_hits, 0u) << "the cache never hit across 50 seeds";
  EXPECT_LT(wave2_wire, cold_wire)
      << "warm runs must beat cold ones somewhere across 50 seeds";
  EXPECT_LE(wave2_wire, wave1_wire);
}

TEST(CertCacheServe, WarmWaveSpendsStrictlyLessThanColdWave) {
  // The bench_serve panel's acceptance, asserted fault-free where it is
  // exact: the paper pool has maybe rows (Tony stalls on address/salary), so
  // a warm replay must strip at least one first-round check request.
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0},
                                       {paper::q1(), StrategyKind::PL, 2.0}};
  const ServeSpec spec = open_spec(10, 9);

  CertCache cache;
  ServeOptions options;
  options.exec.cert_cache = &cache;
  const ServeReport wave1 = serve::serve(*example.federation, pool, spec, options);
  const ServeReport wave2 = serve::serve(*example.federation, pool, spec, options);

  EXPECT_GT(wave1.cert_misses, 0u) << "cold wave must populate the cache";
  EXPECT_GT(wave2.cert_hits, wave1.cert_hits);
  EXPECT_EQ(wave2.cert_misses, 0u) << "a fully warmed wave never misses";
  EXPECT_LT(wave2.bytes_transferred, wave1.bytes_transferred);
  EXPECT_GT(cache.size(), 0u);

  // And the answers still match the cold reference exactly.
  const ServeReport cold = serve::serve(*example.federation, pool, spec, {});
  ASSERT_EQ(wave2.outcomes.size(), cold.outcomes.size());
  for (std::size_t i = 0; i < cold.outcomes.size(); ++i)
    EXPECT_EQ(wave2.outcomes[i].result, cold.outcomes[i].result) << i;
}

}  // namespace
}  // namespace isomer
