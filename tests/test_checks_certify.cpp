// Local execution rows, assistant planning/checking (with cascades), and
// the certification rule, exercised on the paper's running example where
// every intermediate artifact is known in closed form (§2.3, Fig. 7).
#include <gtest/gtest.h>

#include "isomer/core/certify.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

class CertifyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    example_ = paper::make_university();
    query_ = paper::q1();
  }
  const Federation& fed() { return *example_.federation; }
  GOid g(LOid id) { return example_.entity(id); }

  paper::UniversityExample example_;
  GlobalQuery query_;
};

TEST_F(CertifyFixture, LocalRowsAtDb1MatchFigure7a) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  ASSERT_EQ(exec.rows.size(), 3u) << "s1, s2, s3 all survive locally";

  // Predicate indices: 0 address.city, 1 advisor.speciality,
  // 2 advisor.department.name.
  const LocalRow* john = nullptr;
  for (const LocalRow& row : exec.rows)
    if (row.root == example_.ids.s1) john = &row;
  ASSERT_NE(john, nullptr);
  EXPECT_EQ(john->preds[0].truth, Truth::Unknown);
  EXPECT_TRUE(john->preds[0].root_level) << "address missing on the student";
  EXPECT_EQ(john->preds[1].truth, Truth::Unknown);
  EXPECT_EQ(john->preds[1].item, g(example_.ids.t1))
      << "the unsolved item is teacher t1 (speciality missing)";
  EXPECT_EQ(john->preds[1].step, 1u);
  EXPECT_EQ(john->preds[2].truth, Truth::True);

  const LocalRow* mary = nullptr;
  for (const LocalRow& row : exec.rows)
    if (row.root == example_.ids.s3) mary = &row;
  ASSERT_NE(mary, nullptr);
  EXPECT_EQ(mary->preds[2].truth, Truth::Unknown)
      << "t2.department is null, so even the local predicate is unsolved";
  EXPECT_EQ(mary->preds[2].item, g(example_.ids.t2));
}

TEST_F(CertifyFixture, LocalRowsAtDb2MatchFigure7b) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{2});
  // s2' fails address.city (HsinChu); s3' fails speciality (network).
  ASSERT_EQ(exec.rows.size(), 1u);
  EXPECT_EQ(exec.rows[0].root, example_.ids.s1p);
  EXPECT_EQ(exec.rows[0].preds[0].truth, Truth::True);
  EXPECT_EQ(exec.rows[0].preds[1].truth, Truth::True);
  EXPECT_EQ(exec.rows[0].preds[2].truth, Truth::Unknown);
  EXPECT_EQ(exec.rows[0].preds[2].item, g(example_.ids.t1p));
}

TEST_F(CertifyFixture, UnsolvedItemsExcludeRootLevelSites) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  const auto items = unsolved_items_of_rows(exec.rows);
  for (const UnsolvedItem& item : items) EXPECT_GT(item.step, 0u);
  // Items: (t1,p1), (t3,p1), (t2,p1), (t2,p2) — per row, so 4 instances.
  EXPECT_EQ(items.size(), 4u);
}

TEST_F(CertifyFixture, PlanChecksSelectsCapableAssistants) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  const CheckPlan plan = plan_checks(fed(), query_, DbId{1},
                                     unsolved_items_of_rows(exec.rows));
  // t1's assistant t2' lives in DB2 (speciality); t2's assistant t1'' in
  // DB3 (department.name). t3 and t2-for-speciality have no capable
  // assistant (paper: "no assistant object can provide the data of
  // attribute speciality for object t2").
  ASSERT_EQ(plan.task_count(), 2u);
  ASSERT_TRUE(plan.by_target.count(DbId{2}));
  EXPECT_EQ(plan.by_target.at(DbId{2})[0].assistant, example_.ids.t2p);
  EXPECT_EQ(plan.by_target.at(DbId{2})[0].predicate, 1u);
  ASSERT_TRUE(plan.by_target.count(DbId{3}));
  EXPECT_EQ(plan.by_target.at(DbId{3})[0].assistant, example_.ids.t1pp);
  EXPECT_EQ(plan.by_target.at(DbId{3})[0].predicate, 2u);
  EXPECT_GT(plan.meter.table_probes, 0u);
}

TEST_F(CertifyFixture, RunChecksProducesPaperVerdicts) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  const CheckPlan plan = plan_checks(fed(), query_, DbId{1},
                                     unsolved_items_of_rows(exec.rows));
  // DB2: t2' speciality=network, predicate wants database -> False.
  const CheckOutcome at2 =
      run_checks(fed(), query_, DbId{2}, plan.by_target.at(DbId{2}));
  ASSERT_EQ(at2.verdicts.size(), 1u);
  EXPECT_EQ(at2.verdicts[0].item, g(example_.ids.t1));
  EXPECT_EQ(at2.verdicts[0].truth, Truth::False);
  // DB3: t1'' department d1'' is EE, predicate wants CS -> False.
  const CheckOutcome at3 =
      run_checks(fed(), query_, DbId{3}, plan.by_target.at(DbId{3}));
  ASSERT_EQ(at3.verdicts.size(), 1u);
  EXPECT_EQ(at3.verdicts[0].truth, Truth::False);
  EXPECT_EQ(at3.follow_up.task_count(), 0u);
}

TEST_F(CertifyFixture, CertifyReproducesThePaperAnswer) {
  std::vector<LocalExecution> locals;
  locals.push_back(run_local_query(fed(), query_, DbId{1}));
  locals.push_back(run_local_query(fed(), query_, DbId{2}));

  std::vector<CheckVerdict> verdicts;
  for (const LocalExecution& local : locals) {
    const CheckPlan plan = plan_checks(fed(), query_, local.db,
                                       unsolved_items_of_rows(local.rows));
    for (const auto& [target, tasks] : plan.by_target) {
      const CheckOutcome outcome = run_checks(fed(), query_, target, tasks);
      verdicts.insert(verdicts.end(), outcome.verdicts.begin(),
                      outcome.verdicts.end());
    }
  }

  const QueryResult result = certify(fed(), query_, locals, verdicts);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.find(g(example_.ids.s1p))->status, ResultStatus::Certain);
  EXPECT_EQ(result.find(g(example_.ids.s2))->status, ResultStatus::Maybe);
  // John (gs1): his DB2 isomer s2' was eliminated locally, so the row from
  // DB2 is absent and the certification rule eliminates the entity.
  EXPECT_EQ(result.find(g(example_.ids.s1)), nullptr);
  // Mary (gs3): the assistant t1'' violates department.name=CS.
  EXPECT_EQ(result.find(g(example_.ids.s3)), nullptr);
}

TEST_F(CertifyFixture, WithoutVerdictsEverythingUnresolvedStaysMaybe) {
  std::vector<LocalExecution> locals;
  locals.push_back(run_local_query(fed(), query_, DbId{1}));
  locals.push_back(run_local_query(fed(), query_, DbId{2}));
  const QueryResult result = certify(fed(), query_, locals, {});
  // Hedy's item verdict is missing: she degrades to a maybe result. Tony
  // stays maybe. Mary is NOT eliminated anymore (no violating verdict).
  EXPECT_EQ(result.find(g(example_.ids.s1p))->status, ResultStatus::Maybe);
  EXPECT_NE(result.find(g(example_.ids.s3)), nullptr);
  EXPECT_EQ(result.find(g(example_.ids.s1)), nullptr)
      << "row-presence elimination needs no verdicts";
}

TEST_F(CertifyFixture, TrueVerdictSolvesAndFalseEliminates) {
  std::vector<LocalExecution> locals;
  locals.push_back(run_local_query(fed(), query_, DbId{2}));
  // Only DB2's local result: Hedy with advisor.department unsolved on gt4.
  {
    const QueryResult result =
        certify(fed(), query_, locals,
                {CheckVerdict{g(example_.ids.t1p), 2, Truth::True}});
    EXPECT_EQ(result.find(g(example_.ids.s1p))->status,
              ResultStatus::Certain);
  }
  {
    const QueryResult result =
        certify(fed(), query_, locals,
                {CheckVerdict{g(example_.ids.t1p), 2, Truth::False}});
    EXPECT_EQ(result.find(g(example_.ids.s1p)), nullptr);
  }
  {
    const QueryResult result =
        certify(fed(), query_, locals,
                {CheckVerdict{g(example_.ids.t1p), 2, Truth::Unknown}});
    EXPECT_EQ(result.find(g(example_.ids.s1p))->status, ResultStatus::Maybe);
  }
}

TEST_F(CertifyFixture, ConflictingVerdictsFalseDominates) {
  std::vector<LocalExecution> locals;
  locals.push_back(run_local_query(fed(), query_, DbId{2}));
  const QueryResult result =
      certify(fed(), query_, locals,
              {CheckVerdict{g(example_.ids.t1p), 2, Truth::True},
               CheckVerdict{g(example_.ids.t1p), 2, Truth::False}});
  EXPECT_EQ(result.find(g(example_.ids.s1p)), nullptr)
      << "any violating assistant eliminates (certification rule)";
}

TEST_F(CertifyFixture, TargetsMergeAcrossRowsInDbOrder) {
  std::vector<LocalExecution> locals;
  locals.push_back(run_local_query(fed(), query_, DbId{1}));
  locals.push_back(run_local_query(fed(), query_, DbId{2}));
  const QueryResult result = certify(fed(), query_, locals, {});
  const ResultRow* tony = result.find(g(example_.ids.s2));
  ASSERT_NE(tony, nullptr);
  EXPECT_EQ(tony->targets[0], Value("Tony"));
  EXPECT_EQ(tony->targets[1], Value("Haley"));
}

TEST_F(CertifyFixture, SuffixEvaluationStartsMidPath) {
  // Directly exercise eval_global_predicate_at with start_step > 0: check
  // "department.name = CS" on Kelly's DB3 object (t2'' -> d2'' CS).
  const Predicate& pred = query_.predicates[2];  // advisor.department.name
  const Object* kelly = fed().db(DbId{3}).fetch(example_.ids.t2pp);
  ASSERT_NE(kelly, nullptr);
  const LocalPredOutcome outcome = eval_global_predicate_at(
      fed(), DbId{3}, *kelly, fed().schema().cls("Teacher"), pred, 1);
  EXPECT_EQ(outcome.truth, Truth::True);
}

}  // namespace
}  // namespace isomer
