// Columnar extent mirror + vectorized predicate kernels: storage-kind
// classification, null-bitmap edge cases (all-missing columns, empty
// extents, rows straddling 64-bit bitmap words), cache invalidation on
// mutation, and the load-bearing property that a kernel and the
// row-at-a-time `apply` agree on every row for every vectorizable
// (column kind, operator, literal) combination.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "isomer/common/rng.hpp"
#include "isomer/query/kernels.hpp"
#include "isomer/store/database.hpp"

namespace isomer {
namespace {

using ColKind = ColumnarExtent::ColKind;

constexpr CompOp kAllOps[] = {CompOp::Eq, CompOp::Ne, CompOp::Lt,
                              CompOp::Le, CompOp::Gt, CompOp::Ge};

ComponentDatabase make_db() {
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class("T")
      .add_attribute("n", PrimType::Real)
      .add_attribute("i", PrimType::Int)
      .add_attribute("b", PrimType::Bool)
      .add_attribute("s", PrimType::String)
      .add_attribute("r", ComplexType{"T"})
      .add_attribute("gap", PrimType::Real);  // never set: all-missing
  return ComponentDatabase(std::move(schema));
}

TEST(Columnar, KindClassification) {
  ComponentDatabase db = make_db();
  const LOid a = db.insert("T", {{"n", 1.5}, {"i", 7}, {"b", true}, {"s", "x"}});
  db.insert("T", {{"n", 2}, {"i", 4}, {"b", false}, {"s", ""},
                  {"r", LocalRef{a}}});
  const ColumnarExtent& col = db.extent("T").columnar();
  ASSERT_EQ(col.rows(), 2u);
  ASSERT_EQ(col.column_count(), 6u);
  // Int and Real fold into one double-backed Num kind; a stored int in a
  // Real attribute must not demote the column.
  EXPECT_EQ(col.column(0).kind, ColKind::Num);
  EXPECT_EQ(col.column(1).kind, ColKind::Num);
  EXPECT_EQ(col.column(2).kind, ColKind::Bool);
  EXPECT_EQ(col.column(3).kind, ColKind::String);
  EXPECT_EQ(col.column(4).kind, ColKind::Other);
  EXPECT_EQ(col.column(5).kind, ColKind::AllNull);
  EXPECT_GT(col.arena_bytes(), 0u);
}

TEST(Columnar, EmptyExtent) {
  ComponentDatabase db = make_db();
  db.reserve("T", 8);  // reserve must not fabricate rows
  const ColumnarExtent& col = db.extent("T").columnar();
  EXPECT_EQ(col.rows(), 0u);
  ASSERT_EQ(col.column_count(), 6u);
  EXPECT_EQ(col.column(0).kind, ColKind::AllNull);

  // Zero-row evaluation: full and selection kernels write nothing.
  std::vector<Truth> out(1, Truth::True);
  eval_predicate_column(col.column(0), std::size_t{0}, CompOp::Eq, Value(1),
                        out.data());
  eval_predicate_column(col.column(0), std::span<const std::uint32_t>{},
                        CompOp::Eq, Value(1), out.data());
  EXPECT_EQ(out[0], Truth::True) << "zero-row kernels must not write";
}

TEST(Columnar, AllMissingColumnIsUnknownEverywhere) {
  ComponentDatabase db = make_db();
  for (int i = 0; i < 70; ++i) db.insert("T", {{"n", i}});
  const ColumnarExtent& col = db.extent("T").columnar();
  const ColumnarExtent::Column& gap = col.column(5);
  ASSERT_EQ(gap.kind, ColKind::AllNull);
  for (std::size_t r = 0; r < col.rows(); ++r)
    EXPECT_FALSE(gap.is_valid(r)) << "row " << r;
  for (const CompOp op : kAllOps) {
    ASSERT_TRUE(kernel_applicable(gap.kind, op, Value(3)));
    std::vector<Truth> out(col.rows(), Truth::True);
    eval_predicate_column(gap, col.rows(), op, Value(3), out.data());
    for (std::size_t r = 0; r < out.size(); ++r)
      EXPECT_EQ(out[r], Truth::Unknown);
  }
}

TEST(Columnar, NullLiteralVectorizesForEveryKind) {
  ComponentDatabase db = make_db();
  const LOid a = db.insert("T", {{"n", 1}, {"b", true}, {"s", "q"}});
  db.insert("T", {{"r", LocalRef{a}}});
  const ColumnarExtent& col = db.extent("T").columnar();
  for (std::size_t c = 0; c < col.column_count(); ++c) {
    // A null operand yields Unknown before any kind is inspected in the
    // row path, so the null literal vectorizes for *every* column kind —
    // including Other, whose rows the kernel never has to look at.
    ASSERT_TRUE(
        kernel_applicable(col.column(c).kind, CompOp::Lt, Value::null()))
        << "column " << c;
    std::vector<Truth> out(col.rows(), Truth::False);
    eval_predicate_column(col.column(c), col.rows(), CompOp::Lt, Value::null(),
                          out.data());
    for (const Truth t : out) EXPECT_EQ(t, Truth::Unknown);
  }
}

TEST(Columnar, ApplicabilityRules) {
  EXPECT_TRUE(kernel_applicable(ColKind::Num, CompOp::Lt, Value(1)));
  EXPECT_TRUE(kernel_applicable(ColKind::Num, CompOp::Ge, Value(1.5)));
  EXPECT_FALSE(kernel_applicable(ColKind::Num, CompOp::Eq, Value("x")))
      << "numeric vs string throws in the row path";
  EXPECT_TRUE(kernel_applicable(ColKind::Bool, CompOp::Eq, Value(true)));
  EXPECT_TRUE(kernel_applicable(ColKind::Bool, CompOp::Ne, Value(false)));
  EXPECT_FALSE(kernel_applicable(ColKind::Bool, CompOp::Lt, Value(true)))
      << "ordered bool comparison throws in the row path";
  EXPECT_TRUE(kernel_applicable(ColKind::String, CompOp::Le, Value("m")));
  EXPECT_FALSE(kernel_applicable(ColKind::String, CompOp::Eq, Value(1)));
  EXPECT_FALSE(kernel_applicable(ColKind::Other, CompOp::Eq, Value(1)));
  EXPECT_TRUE(kernel_applicable(ColKind::Other, CompOp::Eq, Value::null()))
      << "null literal is Unknown for every kind";
  EXPECT_TRUE(kernel_applicable(ColKind::AllNull, CompOp::Gt, Value("z")));
}

/// Kernel output == row-at-a-time apply(), across bitmap-word boundaries.
/// Sizes straddle 64-row words (63/64/65) and SIMD strides; the value mix
/// includes NaN and an int64 beyond 2^53 to pin the double-compare
/// semantics the row path uses via Value::as_number().
class ColumnarKernelParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColumnarKernelParity, NumKernelMatchesApply) {
  const std::size_t rows = GetParam();
  Rng rng(rows * 977 + 5);
  ComponentDatabase db = make_db();
  db.reserve("T", rows);
  std::vector<Value> stored;
  for (std::size_t r = 0; r < rows; ++r) {
    Value v;
    switch (rng.index(6)) {
      case 0: v = Value::null(); break;
      case 1: v = Value(std::numeric_limits<double>::quiet_NaN()); break;
      case 2: v = Value(std::int64_t{1} << 53); break;
      case 3: v = Value(static_cast<std::int64_t>(rng.uniform_int(-3, 3)));
              break;
      default: v = Value(rng.uniform_real(-2.0, 2.0)); break;
    }
    stored.push_back(v);
    db.insert("T", {{"n", v}});
  }
  const ColumnarExtent& col = db.extent("T").columnar();
  ASSERT_EQ(col.rows(), rows);
  const Value literals[] = {Value(0), Value(0.5), Value(std::int64_t{1} << 53),
                            Value(std::numeric_limits<double>::quiet_NaN()),
                            Value::null()};
  std::vector<Truth> out(rows);
  for (const Value& lit : literals) {
    for (const CompOp op : kAllOps) {
      ASSERT_TRUE(kernel_applicable(col.column(0).kind, op, lit));
      eval_predicate_column(col.column(0), rows, op, lit, out.data());
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(out[r], apply(op, stored[r], lit))
            << "rows=" << rows << " r=" << r << " op=" << static_cast<int>(op);

      // Selection-vector variant over every third row plus the last row —
      // exercises non-contiguous gathers and the boundary entries.
      std::vector<std::uint32_t> sel;
      for (std::size_t r = 0; r < rows; r += 3)
        sel.push_back(static_cast<std::uint32_t>(r));
      if (rows > 0 && (sel.empty() || sel.back() != rows - 1))
        sel.push_back(static_cast<std::uint32_t>(rows - 1));
      std::vector<Truth> picked(sel.size());
      eval_predicate_column(col.column(0), sel, op, lit, picked.data());
      for (std::size_t i = 0; i < sel.size(); ++i)
        ASSERT_EQ(picked[i], apply(op, stored[sel[i]], lit));
    }
  }
}

TEST_P(ColumnarKernelParity, StringAndBoolKernelsMatchApply) {
  const std::size_t rows = GetParam();
  Rng rng(rows * 31 + 7);
  ComponentDatabase db = make_db();
  db.reserve("T", rows);
  const char* words[] = {"", "a", "ab", "b", "ba", "longer-string"};
  std::vector<Value> strs, bools;
  for (std::size_t r = 0; r < rows; ++r) {
    const Value s = rng.bernoulli(0.2) ? Value::null()
                                       : Value(words[rng.index(6)]);
    const Value b =
        rng.bernoulli(0.2) ? Value::null() : Value(rng.bernoulli(0.5));
    strs.push_back(s);
    bools.push_back(b);
    db.insert("T", {{"s", s}, {"b", b}});
  }
  const ColumnarExtent& col = db.extent("T").columnar();
  std::vector<Truth> out(rows);
  for (const CompOp op : kAllOps) {
    if (col.column(3).kind == ColKind::String) {
      eval_predicate_column(col.column(3), rows, op, Value("ab"), out.data());
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(out[r], apply(op, strs[r], Value("ab"))) << "r=" << r;
    }
    if (col.column(2).kind == ColKind::Bool &&
        (op == CompOp::Eq || op == CompOp::Ne)) {
      eval_predicate_column(col.column(2), rows, op, Value(true), out.data());
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(out[r], apply(op, bools[r], Value(true))) << "r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitmapBoundaries, ColumnarKernelParity,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 127, 128, 129,
                                           200));

TEST(Columnar, CountAndCollectRows) {
  const std::vector<Truth> truths = {Truth::True, Truth::Unknown, Truth::False,
                                     Truth::Unknown, Truth::True};
  EXPECT_EQ(count_truth(truths, Truth::True), 2u);
  EXPECT_EQ(count_truth(truths, Truth::Unknown), 2u);
  EXPECT_EQ(count_truth(truths, Truth::False), 1u);
  std::vector<std::uint32_t> sel(truths.size());
  ASSERT_EQ(collect_rows(truths, Truth::Unknown, sel.data()), 2u);
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(sel[1], 3u);
}

TEST(Columnar, InsertInvalidatesMirror) {
  ComponentDatabase db = make_db();
  db.insert("T", {{"n", 1}});
  EXPECT_EQ(db.extent("T").columnar().rows(), 1u);
  db.insert("T", {{"n", 2}});
  const ColumnarExtent& rebuilt = db.extent("T").columnar();
  ASSERT_EQ(rebuilt.rows(), 2u);
  EXPECT_EQ(rebuilt.column(0).nums[1], 2.0);
}

TEST(Columnar, SetAttributeInvalidatesMirror) {
  ComponentDatabase db = make_db();
  const LOid id = db.insert("T", {{"n", 1}});
  const ColumnarExtent& before = db.extent("T").columnar();
  EXPECT_EQ(before.column(0).nums[0], 1.0);
  db.set_attribute(id, "n", Value(9));
  const ColumnarExtent& after = db.extent("T").columnar();
  EXPECT_EQ(after.column(0).nums[0], 9.0);
  // Nulling out the only value must flip the column to AllNull.
  db.set_attribute(id, "n", Value::null());
  EXPECT_EQ(db.extent("T").columnar().column(0).kind, ColKind::AllNull);
}

}  // namespace
}  // namespace isomer
