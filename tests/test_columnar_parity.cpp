// Row-vs-columnar bitwise parity — the contract that makes the columnar
// fast path safe to enable by default: with StrategyOptions::columnar
// toggled, every strategy execution must produce the *identical*
// StrategyReport — answer rows, simulated times, wire bytes and messages,
// and the full aggregated AccessMeter — across randomized Table-2
// workloads, plain, batched and fault-injected. A single diverging counter
// anywhere fails the suite, so a kernel that reorders (rather than
// preserves) metered work cannot land silently.
//
// The ASan recipe (docs/PERFORMANCE.md): configure with
// `cmake -DISOMER_SANITIZE=address` and run this binary — the kernels'
// arena arithmetic and selection vectors then execute under
// AddressSanitizer on every seed.
#include <gtest/gtest.h>

#include "isomer/core/local_exec.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/fault/fault_plan.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

ParamConfig parity_config(std::size_t n_db) {
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {40, 80};  // scaled down; structure unchanged
  return config;
}

void expect_same_report(const StrategyReport& row, const StrategyReport& col,
                        StrategyKind kind, std::uint64_t seed,
                        const char* mode) {
  EXPECT_EQ(col.result, row.result)
      << to_string(kind) << " rows diverged (" << mode << ", seed " << seed
      << ")";
  EXPECT_EQ(col.response_ns, row.response_ns) << to_string(kind) << " " << mode;
  EXPECT_EQ(col.total_ns, row.total_ns) << to_string(kind) << " " << mode;
  EXPECT_EQ(col.cpu_ns, row.cpu_ns) << to_string(kind) << " " << mode;
  EXPECT_EQ(col.disk_ns, row.disk_ns) << to_string(kind) << " " << mode;
  EXPECT_EQ(col.net_ns, row.net_ns) << to_string(kind) << " " << mode;
  EXPECT_EQ(col.bytes_transferred, row.bytes_transferred)
      << to_string(kind) << " " << mode;
  EXPECT_EQ(col.messages, row.messages) << to_string(kind) << " " << mode;
  EXPECT_TRUE(col.work == row.work)
      << to_string(kind) << " meter diverged (" << mode << ", seed " << seed
      << ")";
  EXPECT_EQ(col.unavailable_sites, row.unavailable_sites)
      << to_string(kind) << " " << mode;
  EXPECT_EQ(col.retries, row.retries) << to_string(kind) << " " << mode;
  EXPECT_EQ(col.failed_messages, row.failed_messages)
      << to_string(kind) << " " << mode;
}

class ColumnarParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColumnarParity, StrategiesBitwiseIdenticalRowVsColumnar) {
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const SampleParams sample = draw_sample(parity_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);

  // Three execution environments: plain, batched semijoin shipping, and
  // fault injection with graceful degradation. The columnar toggle must be
  // invisible in all of them.
  fault::FaultPlan plan;
  plan.drop_probability = 0.08;
  plan.spike_probability = 0.1;
  plan.seed = GetParam() * 7919 + 13;

  struct Mode {
    const char* name;
    bool batched;
    bool faulted;
  };
  const Mode modes[] = {{"plain", false, false},
                        {"batched", true, false},
                        {"faulted", false, true}};
  for (const Mode& mode : modes) {
    for (const StrategyKind kind : kPaperStrategies) {
      StrategyOptions options;
      options.record_trace = false;
      options.batch.enabled = mode.batched;
      if (mode.faulted) {
        options.faults = &plan;
        options.retry.max_retries = 5;
        options.degrade = fault::DegradeMode::Partial;
      }
      StrategyOptions row_options = options;
      row_options.columnar = false;
      const StrategyReport row =
          execute_strategy(kind, *synth.federation, synth.query, row_options);
      const StrategyReport col =
          execute_strategy(kind, *synth.federation, synth.query, options);
      expect_same_report(row, col, kind, GetParam(), mode.name);
    }
  }
}

TEST_P(ColumnarParity, LocalExecutionsFieldIdentical) {
  // One level below the strategies: the LocalExecution a home database
  // ships — row list, per-row predicate statuses (including which entity
  // holds the missing data), targets, meter, candidate count — must match
  // field for field at every database of the federation.
  Rng rng(GetParam() + 100000);
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const SampleParams sample = draw_sample(parity_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);
  const Federation& fed = *synth.federation;

  for (std::size_t i = 1; i <= n_db; ++i) {
    const DbId db{static_cast<std::uint16_t>(i)};
    const LocalExecution row =
        run_local_query(fed, synth.query, db, nullptr, false);
    const LocalExecution col =
        run_local_query(fed, synth.query, db, nullptr, true);
    EXPECT_TRUE(row.meter == col.meter) << "meter diverged at DB" << i;
    EXPECT_EQ(row.considered, col.considered);
    ASSERT_EQ(row.rows.size(), col.rows.size()) << "at DB" << i;
    for (std::size_t r = 0; r < row.rows.size(); ++r) {
      const LocalRow& a = row.rows[r];
      const LocalRow& b = col.rows[r];
      EXPECT_EQ(a.root, b.root);
      EXPECT_EQ(a.entity, b.entity);
      EXPECT_EQ(a.targets, b.targets);
      ASSERT_EQ(a.preds.size(), b.preds.size());
      for (std::size_t p = 0; p < a.preds.size(); ++p) {
        EXPECT_EQ(a.preds[p].truth, b.preds[p].truth)
            << "DB" << i << " row " << r << " pred " << p;
        EXPECT_EQ(a.preds[p].item, b.preds[p].item)
            << "DB" << i << " row " << r << " pred " << p;
        EXPECT_EQ(a.preds[p].step, b.preds[p].step);
        EXPECT_EQ(a.preds[p].root_level, b.preds[p].root_level);
      }
    }
  }
}

// 70 seeds x 3 strategies x 3 environments (plus the local-execution
// variant) comfortably clears the suite's 60-seed floor.
INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarParity,
                         ::testing::Range<std::uint64_t>(1, 71));

}  // namespace
}  // namespace isomer
