// Property tests of the residual-condition algebra (query/condition.hpp).
//
// The algebra is small enough to verify exhaustively: every random tree is
// checked against an independently written reference evaluator under EVERY
// assignment of its (item, predicate) keys — a brute-force truth table, not
// sampled evidence. On top of that the tests pin the laws certification
// relies on: simplify() is idempotent and truth-preserving, substitution is
// order-independent (discharge order cannot matter), root-level leaves are
// never substituted, De Morgan and absorption hold for the Kleene
// connectives, and Pool is provably neither of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "isomer/common/rng.hpp"
#include "isomer/query/condition.hpp"
#include "isomer/query/query.hpp"

namespace {

using namespace isomer;

constexpr Truth kTruths[] = {Truth::False, Truth::Unknown, Truth::True};

// ---- Reference evaluator ---------------------------------------------------
// Written from the header's documented semantics, sharing no code with
// Condition::truth: Kleene And = min, Or = max over False < Unknown < True,
// Pool = any-False-refutes-else-any-True-solves, negation on top.

int rank(Truth t) {
  return is_false(t) ? 0 : is_unknown(t) ? 1 : 2;
}

Truth from_rank(int r) { return kTruths[r]; }

Truth ref_eval(const Condition& c, const Condition::Assignment& a) {
  Truth base = Truth::Unknown;
  switch (c.kind()) {
    case Condition::Kind::Constant:
      base = c.constant_value();
      break;
    case Condition::Kind::Leaf: {
      const auto it = a.find(std::pair{c.atom().item, c.atom().predicate});
      base = it == a.end() ? Truth::Unknown : it->second;
      break;
    }
    case Condition::Kind::And: {
      int r = 2;
      for (const Condition& child : c.children())
        r = std::min(r, rank(ref_eval(child, a)));
      base = from_rank(r);
      break;
    }
    case Condition::Kind::Or: {
      int r = 0;
      for (const Condition& child : c.children())
        r = std::max(r, rank(ref_eval(child, a)));
      base = from_rank(r);
      break;
    }
    case Condition::Kind::Pool: {
      bool any_true = false, any_false = false;
      for (const Condition& child : c.children()) {
        const Truth t = ref_eval(child, a);
        any_true |= is_true(t);
        any_false |= is_false(t);
      }
      base = any_false ? Truth::False : any_true ? Truth::True : Truth::Unknown;
      break;
    }
  }
  if (!c.negated()) return base;
  return from_rank(2 - rank(base));
}

// ---- Random trees over a small key universe --------------------------------

using Key = std::pair<GOid, std::size_t>;  // (item, predicate)

/// Four keys keep the brute-force table at 3^4 = 81 assignments.
std::vector<Key> key_universe() {
  return {{GOid{1}, 0}, {GOid{1}, 1}, {GOid{2}, 0}, {GOid{3}, 2}};
}

Condition random_tree(Rng& rng, int depth, bool allow_root) {
  const auto keys = key_universe();
  const bool make_leaf = depth <= 0 || rng.bernoulli(0.35);
  Condition node;
  if (make_leaf) {
    if (rng.bernoulli(0.25)) {
      node = Condition::constant(kTruths[rng.index(3)]);
    } else {
      const Key key = keys[rng.index(keys.size())];
      const auto step = static_cast<std::size_t>(rng.uniform_int(0, 2));
      const bool root = allow_root && step == 0 && rng.bernoulli(0.3);
      node = Condition::leaf(CondAtom{key.first, key.second, step, root});
    }
  } else {
    std::vector<Condition> children;
    const std::size_t arity = 1 + rng.index(3);
    children.reserve(arity);
    for (std::size_t i = 0; i < arity; ++i)
      children.push_back(random_tree(rng, depth - 1, allow_root));
    switch (rng.index(3)) {
      case 0: node = Condition::make_and(std::move(children)); break;
      case 1: node = Condition::make_or(std::move(children)); break;
      default: node = Condition::pool(std::move(children)); break;
    }
  }
  return rng.bernoulli(0.3) ? node.negate() : node;
}

/// Distinct (item, predicate) keys appearing in the tree.
std::vector<Key> keys_of(const Condition& c) {
  std::set<Key> keys;
  for (const CondAtom& atom : c.atoms()) keys.insert({atom.item, atom.predicate});
  return {keys.begin(), keys.end()};
}

/// Every assignment of `keys` to {False, Unknown, True} — 3^|keys| maps.
std::vector<Condition::Assignment> all_assignments(const std::vector<Key>& keys) {
  std::vector<Condition::Assignment> out;
  const std::size_t total = [&] {
    std::size_t n = 1;
    for (std::size_t i = 0; i < keys.size(); ++i) n *= 3;
    return n;
  }();
  out.reserve(total);
  for (std::size_t code = 0; code < total; ++code) {
    Condition::Assignment a;
    std::size_t rest = code;
    for (const Key& key : keys) {
      a[key] = kTruths[rest % 3];
      rest /= 3;
    }
    out.push_back(std::move(a));
  }
  return out;
}

constexpr int kSeeds = 200;

// ---- Properties -------------------------------------------------------------

TEST(Condition, RandomTreesMatchBruteForceTruthTables) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(derive_stream(20260808, static_cast<std::uint64_t>(seed)));
    const Condition tree = random_tree(rng, 4, /*allow_root=*/true);
    for (const Condition::Assignment& a : all_assignments(keys_of(tree)))
      ASSERT_EQ(tree.truth(a), ref_eval(tree, a))
          << "seed " << seed << " tree " << tree.to_string();
  }
}

TEST(Condition, SimplifyIsIdempotentAndTruthPreserving) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(derive_stream(1101, static_cast<std::uint64_t>(seed)));
    const Condition tree = random_tree(rng, 4, /*allow_root=*/true);
    const Condition simplified = tree.simplify();
    ASSERT_EQ(simplified.simplify(), simplified)
        << "seed " << seed << ": simplify not a fixed point on "
        << simplified.to_string();
    // Truth tables are taken over the ORIGINAL tree's keys: simplification
    // may drop leaves, and the dropped ones must not have mattered.
    for (const Condition::Assignment& a : all_assignments(keys_of(tree)))
      ASSERT_EQ(simplified.truth(a), tree.truth(a))
          << "seed " << seed << ": " << tree.to_string() << " vs "
          << simplified.to_string();
  }
}

TEST(Condition, SimplifyKeepsTrueChildrenOfPool) {
  // Pool{True, x} is True while x is Unknown but must still turn False with
  // x — a simplifier that drops the True (as And's would) or collapses the
  // pool early (as Or's would) mis-certifies. This is the one rule where
  // Pool differs from both Kleene connectives, so it gets a pinned case.
  const CondAtom atom{GOid{7}, 1, 2, false};
  const Condition pool = Condition::pool(
      {Condition::constant(Truth::True), Condition::leaf(atom)});
  const Condition simplified = pool.simplify();
  EXPECT_TRUE(is_true(simplified.truth()));
  EXPECT_FALSE(simplified.is_constant())
      << "simplified to " << simplified.to_string()
      << " — the undecided leaf must survive";
  const Condition refuted =
      simplified.substitute(atom.item, atom.predicate, Truth::False);
  EXPECT_TRUE(is_false(refuted.truth()));
}

TEST(Condition, SubstitutionCommutesAcrossDischargeOrders) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(derive_stream(2202, static_cast<std::uint64_t>(seed)));
    // Root-level leaves are excluded here: substitute() skips them by
    // design, and truth(assignment) does not, so the tree/assignment
    // equivalence below only holds for dischargeable leaves.
    const Condition tree = random_tree(rng, 4, /*allow_root=*/false);
    std::vector<Key> keys = keys_of(tree);
    if (keys.empty()) continue;

    Condition::Assignment verdicts;
    for (const Key& key : keys) verdicts[key] = kTruths[rng.index(3)];

    // Two independent discharge orders, one atom at a time.
    std::vector<Key> order_a = keys, order_b = keys;
    for (std::size_t i = order_a.size(); i > 1; --i)
      std::swap(order_a[i - 1], order_a[rng.index(i)]);
    for (std::size_t i = order_b.size(); i > 1; --i)
      std::swap(order_b[i - 1], order_b[rng.index(i)]);

    Condition a = tree, b = tree;
    for (const Key& key : order_a)
      a = a.substitute(key.first, key.second, verdicts.at(key));
    for (const Key& key : order_b)
      b = b.substitute(key.first, key.second, verdicts.at(key));

    ASSERT_EQ(a, b) << "seed " << seed << ": discharge order changed the tree";
    // Incremental discharge agrees with evaluating under the full
    // assignment in one shot — evidence arrival order cannot matter.
    ASSERT_EQ(a.truth(), tree.truth(verdicts)) << "seed " << seed;
    ASSERT_EQ(a.simplify().truth(), tree.truth(verdicts)) << "seed " << seed;
  }
}

TEST(Condition, SubstituteSkipsRootLevelLeaves) {
  const CondAtom root{GOid{5}, 0, 0, true};
  const CondAtom nested{GOid{5}, 0, 1, false};
  const Condition pool =
      Condition::pool({Condition::leaf(root), Condition::leaf(nested)});
  // One verdict about (g5, p0) discharges the nested leaf only: the root
  // site is decided by the pool's row evidence, never by verdicts.
  const Condition after = pool.substitute(GOid{5}, 0, Truth::True);
  ASSERT_EQ(after.children().size(), 2u);
  EXPECT_EQ(after.children()[0], Condition::leaf(root));
  EXPECT_EQ(after.children()[1], Condition::constant(Truth::True));
  EXPECT_TRUE(is_true(after.truth()));  // Pool{Unknown, True} = True
}

TEST(Condition, DeMorganAndAbsorptionOnKleeneTrees) {
  // De Morgan duals exist only for the Kleene pair, so these trees are
  // generated leaf/constant-only and combined with And/Or by hand.
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(derive_stream(3303, static_cast<std::uint64_t>(seed)));
    const auto kleene_tree = [&rng]() {
      Condition c = random_tree(rng, 0, /*allow_root=*/false);  // leaf/const
      for (int level = 0; level < 2; ++level) {
        Condition other = random_tree(rng, 0, /*allow_root=*/false);
        c = rng.bernoulli(0.5)
                ? Condition::make_and({std::move(c), std::move(other)})
                : Condition::make_or({std::move(c), std::move(other)});
      }
      return c;
    };
    const Condition x = kleene_tree();
    const Condition y = kleene_tree();

    const Condition not_and = Condition::make_and({x, y}).negate();
    const Condition or_nots = Condition::make_or({x.negate(), y.negate()});
    const Condition not_or = Condition::make_or({x, y}).negate();
    const Condition and_nots = Condition::make_and({x.negate(), y.negate()});
    const Condition absorb_and = Condition::make_and({x, Condition::make_or({x, y})});
    const Condition absorb_or = Condition::make_or({x, Condition::make_and({x, y})});

    std::set<Key> keys;
    for (const Condition* c : {&x, &y})
      for (const CondAtom& atom : c->atoms()) keys.insert({atom.item, atom.predicate});
    for (const Condition::Assignment& a :
         all_assignments({keys.begin(), keys.end()})) {
      ASSERT_EQ(not_and.truth(a), or_nots.truth(a)) << "seed " << seed;
      ASSERT_EQ(not_or.truth(a), and_nots.truth(a)) << "seed " << seed;
      ASSERT_EQ(absorb_and.truth(a), x.truth(a)) << "seed " << seed;
      ASSERT_EQ(absorb_or.truth(a), x.truth(a)) << "seed " << seed;
    }
  }
}

TEST(Condition, PoolIsNeitherKleeneConnective) {
  const Condition t = Condition::constant(Truth::True);
  const Condition f = Condition::constant(Truth::False);
  const Condition u = Condition::constant(Truth::Unknown);
  // Pool{True, Unknown} = True where And gives Unknown.
  EXPECT_TRUE(is_true(Condition::pool({t, u}).truth()));
  EXPECT_TRUE(is_unknown(Condition::make_and({t, u}).truth()));
  // Pool{False, Unknown} = False where Or gives Unknown.
  EXPECT_TRUE(is_false(Condition::pool({f, u}).truth()));
  EXPECT_TRUE(is_unknown(Condition::make_or({f, u}).truth()));
}

TEST(Condition, CombineConditionsMatchesQueryCombine) {
  // AND(loose) AND OR(AND(group)) — the combined condition's truth must
  // equal GlobalQuery::combine applied to the per-predicate truths, for
  // every truth vector. Query shape: p0 loose, (p1 and p2) or (p3).
  GlobalQuery query;
  query.range_class = "C";
  for (int p = 0; p < 4; ++p)
    query.predicates.push_back(Predicate{});
  query.disjuncts = {{1, 2}, {3}};

  const std::vector<Key> keys = {
      {GOid{1}, 0}, {GOid{1}, 1}, {GOid{2}, 2}, {GOid{2}, 3}};
  std::vector<Condition> per_pred;
  for (std::size_t p = 0; p < 4; ++p)
    per_pred.push_back(Condition::leaf(CondAtom{keys[p].first, p, 1, false}));
  const Condition combined = combine_conditions(query, per_pred);

  for (const Condition::Assignment& a : all_assignments(keys)) {
    std::vector<Truth> truths;
    for (std::size_t p = 0; p < 4; ++p) truths.push_back(per_pred[p].truth(a));
    ASSERT_EQ(combined.truth(a), query.combine(truths));
  }
}

TEST(Condition, DefaultIsConstantTrueAndRendersStably) {
  const Condition def;
  EXPECT_TRUE(def.is_constant());
  EXPECT_TRUE(is_true(def.truth()));
  EXPECT_TRUE(def.atoms().empty());

  const Condition pool = Condition::pool(
      {Condition::leaf(CondAtom{GOid{7}, 1, 2, false}),
       Condition::constant(Truth::True)});
  EXPECT_EQ(pool.to_string(), "pool(g7#1@2, true)");
  EXPECT_EQ(pool.negate().to_string(), "not pool(g7#1@2, true)");
  const Condition root = Condition::leaf(CondAtom{GOid{3}, 0, 0, true});
  EXPECT_EQ(root.to_string(), "g3#0@0r");
}

}  // namespace
