// Disjunctive queries — the paper's §5 first future-work item, implemented
// as an extension: predicates grouped into OR-alternatives, evaluated in
// Kleene logic by every strategy, with certification pooling evidence per
// predicate before applying the formula.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

TEST(DisjunctiveCombine, DefaultsToConjunction) {
  GlobalQuery q;
  q.range_class = "C";
  q.where("a", CompOp::Eq, 1).where("b", CompOp::Eq, 2);
  EXPECT_EQ(q.combine({Truth::True, Truth::True}), Truth::True);
  EXPECT_EQ(q.combine({Truth::True, Truth::False}), Truth::False);
  EXPECT_EQ(q.combine({Truth::True, Truth::Unknown}), Truth::Unknown);
}

TEST(DisjunctiveCombine, OrGroups) {
  GlobalQuery q;
  q.range_class = "C";
  q.where("a", CompOp::Eq, 1).where("b", CompOp::Eq, 2).where("c", CompOp::Eq,
                                                              3);
  q.or_group({1}).or_group({2});  // a AND (b OR c)
  EXPECT_EQ(q.combine({Truth::True, Truth::False, Truth::True}), Truth::True);
  EXPECT_EQ(q.combine({Truth::True, Truth::False, Truth::False}),
            Truth::False);
  EXPECT_EQ(q.combine({Truth::False, Truth::True, Truth::True}),
            Truth::False);
  EXPECT_EQ(q.combine({Truth::True, Truth::Unknown, Truth::False}),
            Truth::Unknown);
  EXPECT_EQ(q.combine({Truth::True, Truth::Unknown, Truth::True}),
            Truth::True)
      << "a True alternative overrides an Unknown one";
}

TEST(DisjunctiveCombine, GroupConjunction) {
  GlobalQuery q;
  q.range_class = "C";
  q.where("a", CompOp::Eq, 1).where("b", CompOp::Eq, 2).where("c", CompOp::Eq,
                                                              3);
  q.or_group({0, 1}).or_group({2});  // (a AND b) OR c
  EXPECT_EQ(q.combine({Truth::True, Truth::False, Truth::False}),
            Truth::False);
  EXPECT_EQ(q.combine({Truth::True, Truth::True, Truth::False}), Truth::True);
  EXPECT_EQ(q.combine({Truth::False, Truth::False, Truth::True}),
            Truth::True);
}

TEST(DisjunctiveCombine, ContractViolations) {
  GlobalQuery q;
  q.range_class = "C";
  q.where("a", CompOp::Eq, 1);
  EXPECT_THROW((void)q.combine({}), ContractViolation);
  q.or_group({5});
  EXPECT_THROW((void)q.combine({Truth::True}), ContractViolation);
}

TEST(DisjunctivePrinter, RendersGroups) {
  GlobalQuery q;
  q.range_class = "Student";
  q.select("name");
  q.where("age", CompOp::Ge, 21);
  q.where("sex", CompOp::Eq, "male");
  q.where("sex", CompOp::Eq, "female");
  q.or_group({1}).or_group({2});
  EXPECT_EQ(to_sqlx(q),
            "Select X.name From Student X Where X.age>=21 and "
            "(X.sex=male or X.sex=female)");
}

TEST(DisjunctivePaperExample, TaipeiOrDatabaseSpecialist) {
  // "Students living in Taipei OR advised by a database specialist."
  const paper::UniversityExample example = paper::make_university();
  GlobalQuery q;
  q.range_class = "Student";
  q.select("name");
  q.where("address.city", CompOp::Eq, "Taipei");
  q.where("advisor.speciality", CompOp::Eq, "database");
  q.or_group({0}).or_group({1});

  const QueryResult expected = reference_answer(*example.federation, q);
  // Hedy: Taipei (True) -> certain. Fanny: Taipei -> certain.
  // John: HsinChu (False) but advisor Jeffery speciality network (False)
  //   -> eliminated.
  // Tony/Mary: address unknown, speciality unknown -> maybe.
  EXPECT_EQ(expected.find(example.entity(example.ids.s1p))->status,
            ResultStatus::Certain);
  EXPECT_EQ(expected.find(example.entity(example.ids.s3p))->status,
            ResultStatus::Certain);
  EXPECT_EQ(expected.find(example.entity(example.ids.s1)), nullptr);
  EXPECT_EQ(expected.find(example.entity(example.ids.s2))->status,
            ResultStatus::Maybe);
  EXPECT_EQ(expected.find(example.entity(example.ids.s3))->status,
            ResultStatus::Maybe);

  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *example.federation, q);
    EXPECT_EQ(report.result, expected) << to_string(kind);
  }
}

TEST(DisjunctivePaperExample, FalseConjunctSurvivesInADisjunct) {
  // Tony's advisor Haley IS in CS (True) but his city is unknown; with
  // "city=Taipei OR department=EE" the department alternative is False and
  // the city unknown: the OR stays Unknown -> maybe, not eliminated.
  const paper::UniversityExample example = paper::make_university();
  GlobalQuery q;
  q.range_class = "Student";
  q.select("name");
  q.where("address.city", CompOp::Eq, "Taipei");
  q.where("advisor.department.name", CompOp::Eq, "EE");
  q.or_group({0}).or_group({1});
  const QueryResult result = reference_answer(*example.federation, q);
  const ResultRow* tony = result.find(example.entity(example.ids.s2));
  ASSERT_NE(tony, nullptr);
  EXPECT_EQ(tony->status, ResultStatus::Maybe);
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *example.federation, q);
    EXPECT_EQ(report.result, result) << to_string(kind);
  }
}

// Property: strategy equivalence extends to randomized disjunctive shapes.
class DisjunctiveEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DisjunctiveEquivalence, AllStrategiesAgree) {
  Rng rng(GetParam());
  ParamConfig config;
  config.n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  config.n_objects = {30, 50};
  const SampleParams sample = draw_sample(config, rng);
  SynthFederation synth = materialize_sample(sample);
  if (synth.query.predicates.size() < 2) return;  // nothing to group

  // Randomly partition the predicates into 2 OR-groups.
  GlobalQuery& q = synth.query;
  std::vector<std::vector<std::size_t>> groups(2);
  for (std::size_t p = 0; p < q.predicates.size(); ++p)
    groups[rng.index(2)].push_back(p);
  for (auto& group : groups)
    if (!group.empty()) q.disjuncts.push_back(group);

  const QueryResult expected = reference_answer(*synth.federation, q);
  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, q);
    EXPECT_EQ(report.result, expected)
        << to_string(kind) << " diverged on seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjunctiveEquivalence,
                         ::testing::Range<std::uint64_t>(700, 725));

}  // namespace
}  // namespace isomer
