// The evaluation cache (query/eval_cache.hpp) must be observationally
// invisible: for any database and predicate, cached evaluation returns the
// same PredicateOutcome (truth and unsolved site) and charges the same
// AccessMeter counts as the uncached path — the cache may only change
// wall-clock time. Verified property-style over randomized synthetic
// federations, whose schema-level missing attributes, null values, and
// multi-valued references cover every evaluator branch.
#include <gtest/gtest.h>

#include <new>

#include "isomer/query/eval.hpp"
#include "isomer/query/eval_cache.hpp"
#include "isomer/schema/translate.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

class CachedEvalAgrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CachedEvalAgrees, OnRandomFederations) {
  Rng rng(GetParam());
  ParamConfig config;
  config.n_objects = {20, 40};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  const Federation& fed = *synth.federation;

  for (const DbId db : fed.db_ids()) {
    const auto local = derive_local_query(fed.schema(), synth.query, db);
    ASSERT_TRUE(local.has_value());
    const ComponentDatabase& database = fed.db(db);
    // One cache for the whole extent, as a local execution would use it;
    // later objects hit entries warmed by earlier ones.
    EvalCache cache(database);
    AccessMeter uncached_meter, cached_meter;

    for (const Object& obj : database.extent(local->root_class).objects()) {
      for (const Predicate& pred : local->local_predicates) {
        const PredicateOutcome uncached =
            eval_predicate(database, obj, pred, &uncached_meter);
        const PredicateOutcome cached =
            eval_predicate(database, obj, pred, &cached_meter, &cache);
        EXPECT_EQ(uncached.truth, cached.truth);
        EXPECT_EQ(uncached.site, cached.site);

        const Value uncached_value =
            eval_path(database, obj, pred.path, &uncached_meter);
        const Value cached_value =
            eval_path(database, obj, pred.path, &cached_meter, &cache);
        EXPECT_EQ(uncached_value, cached_value);

        const Object* uncached_reached =
            walk_prefix(database, obj, pred.path, &uncached_meter);
        const Object* cached_reached =
            walk_prefix(database, obj, pred.path, &cached_meter, &cache);
        EXPECT_EQ(uncached_reached, cached_reached);
      }

      const ObjectEval uncached_all = eval_conjunction(
          database, obj, local->local_predicates, &uncached_meter);
      const ObjectEval cached_all = eval_conjunction(
          database, obj, local->local_predicates, &cached_meter, &cache);
      EXPECT_EQ(uncached_all.truth, cached_all.truth);
      ASSERT_EQ(uncached_all.unknowns.size(), cached_all.unknowns.size());
      for (std::size_t u = 0; u < uncached_all.unknowns.size(); ++u) {
        EXPECT_EQ(uncached_all.unknowns[u].predicate_index,
                  cached_all.unknowns[u].predicate_index);
        EXPECT_EQ(uncached_all.unknowns[u].site, cached_all.unknowns[u].site);
      }
    }
    // Byte-for-byte metering: every counter, not just comparisons.
    EXPECT_EQ(uncached_meter, cached_meter);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedEvalAgrees,
                         ::testing::Range<std::uint64_t>(500, 512));

TEST(CachedEval, MissingAttributeIsCachedNegatively) {
  Rng rng(42);
  ParamConfig config;
  config.n_objects = {10, 20};
  const SynthFederation synth = materialize_sample(draw_sample(config, rng));
  const Federation& fed = *synth.federation;
  const DbId db = fed.db_ids().front();
  const auto local = derive_local_query(fed.schema(), synth.query, db);
  ASSERT_TRUE(local.has_value());

  // A path no class defines exercises the negative entries of the
  // per-(step, class) resolution table on every object after the first.
  const Predicate pred{PathExpr::parse("no_such_attribute"), CompOp::Eq,
                       Value{std::int64_t{1}}};

  const ComponentDatabase& database = fed.db(db);
  EvalCache cache(database);
  AccessMeter uncached_meter, cached_meter;
  for (const Object& obj : database.extent(local->root_class).objects()) {
    const PredicateOutcome uncached =
        eval_predicate(database, obj, pred, &uncached_meter);
    const PredicateOutcome cached =
        eval_predicate(database, obj, pred, &cached_meter, &cache);
    EXPECT_EQ(uncached.truth, Truth::Unknown);
    EXPECT_EQ(uncached.truth, cached.truth);
    EXPECT_EQ(uncached.site, cached.site);
  }
  EXPECT_EQ(uncached_meter, cached_meter);
}

TEST(CachedEval, CacheReuseAcrossRepeatedEvaluation) {
  // A warm cache must keep agreeing with the uncached path on a second full
  // pass (deref memo fully populated, all resolutions negative or positive).
  Rng rng(7);
  ParamConfig config;
  config.n_objects = {10, 20};
  const SynthFederation synth = materialize_sample(draw_sample(config, rng));
  const Federation& fed = *synth.federation;
  const DbId db = fed.db_ids().front();
  const auto local = derive_local_query(fed.schema(), synth.query, db);
  ASSERT_TRUE(local.has_value());
  const ComponentDatabase& database = fed.db(db);

  EvalCache cache(database);
  for (int pass = 0; pass < 2; ++pass) {
    AccessMeter uncached_meter, cached_meter;
    for (const Object& obj : database.extent(local->root_class).objects()) {
      for (const Predicate& pred : local->local_predicates) {
        const PredicateOutcome uncached =
            eval_predicate(database, obj, pred, &uncached_meter);
        const PredicateOutcome cached =
            eval_predicate(database, obj, pred, &cached_meter, &cache);
        EXPECT_EQ(uncached.truth, cached.truth);
        EXPECT_EQ(uncached.site, cached.site);
      }
    }
    EXPECT_EQ(uncached_meter, cached_meter);
  }
}

TEST(CachedEval, AddressReusePoisoning) {
  // Resolutions are keyed by the PathExpr's address; a path can die and a
  // different one be constructed at the same address (trials build their
  // queries as temporaries). The map slot is verified against the steps, but
  // the MRU ring in front of it is identity-based: when an address reuse
  // forces a slot rebuild, ring entries pointing at the deleted
  // PathResolution must be scrubbed, or the next lookup at that address
  // scans freed memory (a use-after-free under ASan; a potential stale
  // resolution in plain builds).
  Rng rng(7);
  ParamConfig config;
  config.n_objects = {10, 20};
  const SynthFederation synth = materialize_sample(draw_sample(config, rng));
  const Federation& fed = *synth.federation;
  EvalCache cache(fed.db(fed.db_ids().front()));

  alignas(PathExpr) unsigned char storage[sizeof(PathExpr)];
  const auto construct = [&](const char* text) {
    return new (storage) PathExpr(PathExpr::parse(text));
  };

  PathExpr* path = construct("alpha.beta");
  PathResolution* first = &cache.resolution(*path);
  EXPECT_EQ(first->steps(), path->steps());
  // The repeat lookup is served by the MRU ring, seeding the identity entry
  // the scrub must later clear.
  EXPECT_EQ(&cache.resolution(*path), first);

  // Same address, different steps: the slot is rebuilt (deleting the first
  // resolution) and the ring entry for it must be scrubbed here.
  path->~PathExpr();
  path = construct("gamma");
  const PathResolution& second = cache.resolution(*path);
  EXPECT_EQ(second.steps(), path->steps());

  // Same address, the original steps again: before the scrub, the ring
  // still held (address, deleted-first) and the identity scan dereferenced
  // freed memory — and, when the allocator had not recycled it, served the
  // stale resolution. After the scrub this misses and rebuilds.
  path->~PathExpr();
  path = construct("alpha.beta");
  const PathResolution& third = cache.resolution(*path);
  EXPECT_EQ(third.steps(), path->steps());
  path->~PathExpr();
}

}  // namespace
}  // namespace isomer
