// explain(): narrated accounts of why an entity is certain/maybe/eliminated.
#include <gtest/gtest.h>

#include "isomer/core/explain.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

class ExplainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    example_ = paper::make_university();
    query_ = paper::q1();
  }
  const Federation& fed() { return *example_.federation; }
  GOid g(LOid id) { return example_.entity(id); }
  paper::UniversityExample example_;
  GlobalQuery query_;
};

TEST_F(ExplainFixture, HedyIsCertainThroughAnAssistant) {
  const Explanation e = explain(fed(), query_, g(example_.ids.s1p));
  EXPECT_EQ(e.outcome, Outcome::Certain);
  ASSERT_EQ(e.predicates.size(), 3u);
  EXPECT_EQ(e.predicates[0].merged, Truth::True);   // address.city
  EXPECT_EQ(e.predicates[1].merged, Truth::True);   // advisor.speciality
  EXPECT_EQ(e.predicates[2].merged, Truth::True);   // advisor.department.name
  // The department predicate was settled by a checked assistant (t2''@DB3).
  bool assistant_settled = false;
  for (const Evidence& evidence : e.predicates[2].evidence)
    if (evidence.from_assistant && is_true(evidence.truth))
      assistant_settled = true;
  EXPECT_TRUE(assistant_settled);
}

TEST_F(ExplainFixture, TonyIsMaybeWithNamedMissingData) {
  const Explanation e = explain(fed(), query_, g(example_.ids.s2));
  EXPECT_EQ(e.outcome, Outcome::Maybe);
  EXPECT_EQ(e.predicates[0].merged, Truth::Unknown);
  EXPECT_EQ(e.predicates[1].merged, Truth::Unknown);
  EXPECT_EQ(e.predicates[2].merged, Truth::True);
  // The narration names the missing attribute and its holder.
  const std::string text = e.to_text(query_);
  EXPECT_NE(text.find("address"), std::string::npos) << text;
  EXPECT_NE(text.find("missing attribute"), std::string::npos) << text;
}

TEST_F(ExplainFixture, ResidualHistogramNamesTonysUnresolvedAtoms) {
  // A Maybe row carries a residual condition; its histogram is the
  // per-entity view of CertifyStats::unresolved_by_predicate. Tony stalls on
  // address.city (p0) and salary (p1) while the advisor predicate (p2) is
  // settled, so exactly p0 and p1 must appear — and the residual text must
  // reach the narration.
  const Explanation e = explain(fed(), query_, g(example_.ids.s2));
  ASSERT_EQ(e.outcome, Outcome::Maybe);
  const std::map<std::size_t, std::uint64_t> histogram = e.residual_histogram();
  ASSERT_EQ(histogram.size(), 2u);
  ASSERT_TRUE(histogram.count(0));
  ASSERT_TRUE(histogram.count(1));
  EXPECT_GE(histogram.at(0), 1u);
  EXPECT_GE(histogram.at(1), 1u);
  EXPECT_FALSE(histogram.count(2)) << "p2 is settled, nothing residual";
  EXPECT_TRUE(is_unknown(e.residual.truth()));
  const std::string text = e.to_text(query_);
  EXPECT_NE(text.find("residual:"), std::string::npos) << text;
  EXPECT_NE(text.find("unresolved atoms:"), std::string::npos) << text;
  EXPECT_NE(text.find("p0="), std::string::npos) << text;
  EXPECT_NE(text.find("p1="), std::string::npos) << text;
}

TEST_F(ExplainFixture, ResidualIsConstantTrueForDecidedOutcomes) {
  // Certain, eliminated and not-found entities have nothing residual: the
  // condition defaults to the constant True and the histogram stays empty.
  for (const GOid entity : {g(example_.ids.s1p),   // Hedy: certain
                            g(example_.ids.s1),    // John: eliminated
                            g(example_.ids.s3),    // Mary: eliminated
                            GOid{99999}}) {        // not found
    const Explanation e = explain(fed(), query_, entity);
    ASSERT_NE(e.outcome, Outcome::Maybe) << "g" << entity.value();
    EXPECT_TRUE(e.residual_histogram().empty()) << "g" << entity.value();
    EXPECT_TRUE(e.residual.is_constant()) << "g" << entity.value();
    EXPECT_TRUE(is_true(e.residual.truth())) << "g" << entity.value();
  }
}

TEST_F(ExplainFixture, JohnIsEliminatedByHisDb2Isomer) {
  const Explanation e = explain(fed(), query_, g(example_.ids.s1));
  EXPECT_EQ(e.outcome, Outcome::Eliminated);
  ASSERT_TRUE(e.eliminated_at.has_value());
  EXPECT_EQ(*e.eliminated_at, DbId{2}) << "s2' fails address.city at DB2";
}

TEST_F(ExplainFixture, MaryIsEliminatedByAViolatingAssistant) {
  const Explanation e = explain(fed(), query_, g(example_.ids.s3));
  EXPECT_EQ(e.outcome, Outcome::Eliminated);
  EXPECT_EQ(e.predicates[2].merged, Truth::False)
      << "t1''@DB3's department is EE, not CS";
}

TEST_F(ExplainFixture, UnknownEntitiesAreNotFound) {
  EXPECT_EQ(explain(fed(), query_, GOid{0}).outcome, Outcome::NotFound);
  EXPECT_EQ(explain(fed(), query_, GOid{99999}).outcome, Outcome::NotFound);
  // A teacher is not an entity of the range class Student.
  EXPECT_EQ(explain(fed(), query_, g(example_.ids.t1)).outcome,
            Outcome::NotFound);
}

TEST_F(ExplainFixture, TextRendering) {
  const std::string text =
      explain(fed(), query_, g(example_.ids.s1p)).to_text(query_);
  EXPECT_NE(text.find("certain"), std::string::npos);
  EXPECT_NE(text.find("X.address.city=Taipei"), std::string::npos);
  EXPECT_NE(text.find("[check]"), std::string::npos);
}

// Property: explain()'s outcome always matches the strategies' answer.
class ExplainMatchesStrategies : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExplainMatchesStrategies, OnRandomWorkloads) {
  Rng rng(GetParam());
  ParamConfig config;
  config.n_objects = {25, 45};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  const QueryResult result =
      reference_answer(*synth.federation, synth.query);
  const GoidTable& goids = synth.federation->goids();
  for (const GOid entity : goids.entities_of(synth.query.range_class)) {
    const Explanation e = explain(*synth.federation, synth.query, entity);
    const ResultRow* row = result.find(entity);
    if (row == nullptr) {
      EXPECT_EQ(e.outcome, Outcome::Eliminated)
          << "g" << entity.value() << " seed " << GetParam();
    } else if (row->status == ResultStatus::Certain) {
      EXPECT_EQ(e.outcome, Outcome::Certain)
          << "g" << entity.value() << " seed " << GetParam();
    } else {
      EXPECT_EQ(e.outcome, Outcome::Maybe)
          << "g" << entity.value() << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplainMatchesStrategies,
                         ::testing::Range<std::uint64_t>(800, 812));

}  // namespace
}  // namespace isomer
