// The fault-tolerant extension of the strategy-equivalence theorem: under
// fault injection with graceful degradation (DegradeMode::Partial), CA, BL
// and PL still return identical answers — the same (certain, maybe,
// unavailable-tagged) partition — and that answer equals the degraded
// oracle (fault::degraded_reference) computed from the sites each execution
// observed as unreachable. Exercised over randomized federations × fault
// plans: per-site permanent outages, message drops, latency spikes.
//
// Also pinned here: a zero-fault FaultPlan is bitwise-identical to running
// without one (the executors take the exact legacy code path), and
// DegradeMode::Fail surfaces FaultError instead of degrading.
#include <gtest/gtest.h>

#include <set>

#include "isomer/core/strategy.hpp"
#include "isomer/fault/degrade.hpp"
#include "isomer/fault/fault_plan.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

ParamConfig small_config(std::size_t n_db) {
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {20, 40};  // scaled down; structure unchanged
  return config;
}

class FaultEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultEquivalence, StrategiesAgreeUnderPartialDegradation) {
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const SampleParams sample = draw_sample(small_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);
  ASSERT_TRUE(synth.federation->check_consistency().empty());

  // A random fault plan: each site permanently dark with probability 0.3,
  // sometimes message drops, sometimes latency spikes. retries=8 makes a
  // live site's death by consecutive drops (p <= 0.15^9) statistically
  // absent, so every observed outage traces back to a planned one.
  fault::FaultPlan plan;
  plan.seed = derive_stream(0xFA17'0000ULL, GetParam());
  for (const DbId db : synth.federation->db_ids())
    if (rng.bernoulli(0.3))
      plan.outages.push_back(fault::Outage{db, 0, fault::kForever});
  if (rng.bernoulli(0.5))
    plan.drop_probability = rng.uniform_real(0.01, 0.15);
  if (rng.bernoulli(0.3)) {
    plan.spike_probability = 0.3;
    plan.spike_ns = 500'000;
  }

  StrategyOptions options;
  options.faults = &plan;
  options.retry.max_retries = 8;
  options.degrade = fault::DegradeMode::Partial;

  bool first = true;
  QueryResult agreed;
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query, options);

    // Every site declared dead was planned dead (permanent windows).
    std::set<DbId> observed;
    for (const DbId db : report.unavailable_sites) {
      EXPECT_TRUE(plan.down(db, 0))
          << to_string(kind) << " declared live DB" << db.value()
          << " dead on seed " << GetParam();
      observed.insert(db);
    }

    // The answer equals the degraded oracle for the observed outage set.
    const QueryResult oracle = fault::degraded_reference(
        *synth.federation, synth.query, observed);
    EXPECT_EQ(report.result, oracle)
        << to_string(kind) << " diverged from the degraded reference on seed "
        << GetParam();

    // Certain rows never carry the unavailable tag.
    for (const ResultRow& row : report.result.rows)
      if (row.status == ResultStatus::Certain) EXPECT_FALSE(row.unavailable);

    // And all strategies return the same partition (rows compare with
    // status, targets and the unavailable flag).
    if (first) {
      agreed = report.result;
      first = false;
    } else {
      EXPECT_EQ(report.result, agreed)
          << to_string(kind) << " disagreed with CA on seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultEquivalence,
                         ::testing::Range<std::uint64_t>(1, 201));

class BatchedFaultEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedFaultEquivalence, BatchingPreservesTheDegradedPartition) {
  // Batching reshapes attempts into frames, which shifts the per-attempt
  // fault RNG draws (timing and retry counts may move) — but never which
  // sites get contacted. With permanent planned outages and retries=8
  // (random death by consecutive drops statistically absent), the observed
  // dead set, and therefore the (certain, maybe, unavailable) partition,
  // must match the unbatched run exactly.
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const SampleParams sample = draw_sample(small_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);

  fault::FaultPlan plan;
  plan.seed = derive_stream(0xBA7C'0000ULL, GetParam());
  for (const DbId db : synth.federation->db_ids())
    if (rng.bernoulli(0.3))
      plan.outages.push_back(fault::Outage{db, 0, fault::kForever});
  if (rng.bernoulli(0.5))
    plan.drop_probability = rng.uniform_real(0.01, 0.15);

  StrategyOptions options;
  options.faults = &plan;
  options.retry.max_retries = 8;
  options.degrade = fault::DegradeMode::Partial;
  StrategyOptions batched = options;
  batched.batch.enabled = true;

  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport plain =
        execute_strategy(kind, *synth.federation, synth.query, options);
    const StrategyReport framed =
        execute_strategy(kind, *synth.federation, synth.query, batched);

    std::set<DbId> observed;
    for (const DbId db : framed.unavailable_sites) {
      EXPECT_TRUE(plan.down(db, 0))
          << to_string(kind) << " (batched) declared live DB" << db.value()
          << " dead on seed " << GetParam();
      observed.insert(db);
    }
    EXPECT_EQ(framed.result, fault::degraded_reference(*synth.federation,
                                                       synth.query, observed))
        << to_string(kind)
        << " (batched) diverged from the degraded reference on seed "
        << GetParam();
    EXPECT_EQ(framed.result, plain.result)
        << to_string(kind)
        << " batched and unbatched partitions diverged on seed "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedFaultEquivalence,
                         ::testing::Range<std::uint64_t>(1, 61));

TEST(FaultFreePath, ZeroFaultPlanIsBitwiseIdenticalToNoPlan) {
  for (const std::uint64_t seed : {3ULL, 17ULL, 42ULL}) {
    Rng rng(seed);
    const SampleParams sample = draw_sample(small_config(3), rng);
    const SynthFederation synth = materialize_sample(sample);

    const fault::FaultPlan inert;  // enabled() == false
    ASSERT_FALSE(inert.enabled());
    StrategyOptions with_plan;
    with_plan.faults = &inert;
    with_plan.degrade = fault::DegradeMode::Partial;

    for (const StrategyKind kind : kPaperStrategies) {
      const StrategyReport plain =
          execute_strategy(kind, *synth.federation, synth.query);
      const StrategyReport gated =
          execute_strategy(kind, *synth.federation, synth.query, with_plan);
      EXPECT_EQ(plain.result, gated.result) << to_string(kind);
      EXPECT_EQ(plain.response_ns, gated.response_ns) << to_string(kind);
      EXPECT_EQ(plain.total_ns, gated.total_ns) << to_string(kind);
      EXPECT_EQ(plain.bytes_transferred, gated.bytes_transferred)
          << to_string(kind);
      EXPECT_EQ(plain.messages, gated.messages) << to_string(kind);
      EXPECT_EQ(gated.retries, 0u);
      EXPECT_EQ(gated.failed_messages, 0u);
      EXPECT_TRUE(gated.unavailable_sites.empty());
      EXPECT_EQ(gated.result.unavailable_count(), 0u);
    }
  }
}

TEST(FaultFailMode, ExhaustedRetriesThrowFaultError) {
  Rng rng(5);
  const SampleParams sample = draw_sample(small_config(3), rng);
  const SynthFederation synth = materialize_sample(sample);

  // Every site dark forever: whichever site a strategy contacts first, the
  // shipment exhausts its retries and — without permission to degrade —
  // aborts the query.
  fault::FaultPlan plan;
  plan.seed = 1;
  for (const DbId db : synth.federation->db_ids())
    plan.outages.push_back(fault::Outage{db, 0, fault::kForever});
  StrategyOptions options;
  options.faults = &plan;
  options.retry.max_retries = 2;
  options.degrade = fault::DegradeMode::Fail;

  for (const StrategyKind kind : kPaperStrategies)
    EXPECT_THROW(
        (void)execute_strategy(kind, *synth.federation, synth.query, options),
        FaultError)
        << to_string(kind);
}

TEST(FaultDeterminism, FaultedRunsReplayBitIdentically) {
  Rng rng(9);
  const SampleParams sample = draw_sample(small_config(4), rng);
  const SynthFederation synth = materialize_sample(sample);

  fault::FaultPlan plan;
  plan.seed = 77;
  plan.drop_probability = 0.1;
  plan.spike_probability = 0.2;
  plan.outages.push_back(
      fault::Outage{synth.federation->db_ids().front(), 0, fault::kForever});
  StrategyOptions options;
  options.faults = &plan;
  options.retry.max_retries = 8;
  options.degrade = fault::DegradeMode::Partial;

  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport a =
        execute_strategy(kind, *synth.federation, synth.query, options);
    const StrategyReport b =
        execute_strategy(kind, *synth.federation, synth.query, options);
    EXPECT_EQ(a.result, b.result) << to_string(kind);
    EXPECT_EQ(a.response_ns, b.response_ns) << to_string(kind);
    EXPECT_EQ(a.total_ns, b.total_ns) << to_string(kind);
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << to_string(kind);
    EXPECT_EQ(a.retries, b.retries) << to_string(kind);
    EXPECT_EQ(a.unavailable_sites, b.unavailable_sites) << to_string(kind);
  }
}

TEST(FaultSpecParser, ParsesTheDocumentedGrammar) {
  const fault::FaultSpec spec = fault::parse_fault_spec(
      "drop=0.05,spike=0.1:1ms,down=2,down=3@5ms..20ms,seed=9,retries=4,"
      "timeout=3ms,backoff=500us,degrade=fail");
  EXPECT_DOUBLE_EQ(spec.plan.drop_probability, 0.05);
  EXPECT_DOUBLE_EQ(spec.plan.spike_probability, 0.1);
  EXPECT_EQ(spec.plan.spike_ns, 1'000'000);
  ASSERT_EQ(spec.plan.outages.size(), 2u);
  EXPECT_EQ(spec.plan.outages[0].db.value(), 2);
  EXPECT_EQ(spec.plan.outages[0].from, 0);
  EXPECT_EQ(spec.plan.outages[0].until, fault::kForever);
  EXPECT_EQ(spec.plan.outages[1].db.value(), 3);
  EXPECT_EQ(spec.plan.outages[1].from, 5'000'000);
  EXPECT_EQ(spec.plan.outages[1].until, 20'000'000);
  EXPECT_EQ(spec.plan.seed, 9u);
  EXPECT_EQ(spec.retry.max_retries, 4);
  EXPECT_EQ(spec.retry.timeout_ns, 3'000'000);
  EXPECT_EQ(spec.retry.backoff_ns, 500'000);
  EXPECT_EQ(spec.degrade, fault::DegradeMode::Fail);
  EXPECT_TRUE(spec.plan.enabled());

  EXPECT_FALSE(fault::parse_fault_spec("drop=0").plan.enabled());
}

TEST(FaultSpecParser, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "drop", "drop=", "drop=1.5", "drop=-0.1", "drop=abc",
        "spike=0.5", "spike=0.5:10", "spike=2:1ms", "down=", "down=1@5ms",
        "down=1@5ms..2ms", "timeout=0ns", "timeout=5", "retries=x",
        "degrade=maybe", "bogus=1", "drop=0.1,,spike=0.1:1ms",
        "drop=0.1,drop=0.2", "seed=1,down=2,seed=1"})
    EXPECT_THROW((void)fault::parse_fault_spec(bad), FaultError) << bad;
}

TEST(RetryPolicy, BackoffDoublesAndSaturates) {
  fault::RetryPolicy retry;
  retry.backoff_ns = 1'000'000;
  EXPECT_EQ(retry.backoff(0), 1'000'000);
  EXPECT_EQ(retry.backoff(1), 2'000'000);
  EXPECT_EQ(retry.backoff(5), 32'000'000);
  EXPECT_GT(retry.backoff(80), 0);  // saturates instead of overflowing
}

}  // namespace
}  // namespace isomer
