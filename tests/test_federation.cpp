// GOid mapping tables, isomerism detection, federation validation and the
// consistency checker.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/federation/federation.hpp"
#include "isomer/federation/isomerism.hpp"
#include "isomer/schema/integrator.hpp"

namespace isomer {
namespace {

TEST(GoidTable, RegisterAssignsSequentialGOids) {
  GoidTable table;
  const GOid a = table.register_entity("C", {LOid{DbId{1}, 1}});
  const GOid b = table.register_entity("C", {LOid{DbId{1}, 2}});
  EXPECT_EQ(a, GOid{1});
  EXPECT_EQ(b, GOid{2});
  EXPECT_EQ(table.entity_count(), 2u);
}

TEST(GoidTable, IsomersSortedByDb) {
  GoidTable table;
  const GOid g = table.register_entity(
      "C", {LOid{DbId{3}, 1}, LOid{DbId{1}, 5}, LOid{DbId{2}, 9}});
  const auto& isomers = table.isomers_of(g);
  ASSERT_EQ(isomers.size(), 3u);
  EXPECT_EQ(isomers[0].db, DbId{1});
  EXPECT_EQ(isomers[1].db, DbId{2});
  EXPECT_EQ(isomers[2].db, DbId{3});
}

TEST(GoidTable, Probes) {
  GoidTable table;
  const GOid g =
      table.register_entity("C", {LOid{DbId{1}, 1}, LOid{DbId{2}, 7}});
  AccessMeter meter;
  EXPECT_EQ(table.goid_of(LOid{DbId{1}, 1}, &meter), g);
  EXPECT_EQ(table.goid_of(LOid{DbId{1}, 99}, &meter), std::nullopt);
  EXPECT_EQ(table.loid_in(g, DbId{2}, &meter), (LOid{DbId{2}, 7}));
  EXPECT_EQ(table.loid_in(g, DbId{3}, &meter), std::nullopt);
  EXPECT_EQ(meter.table_probes, 4u);
  EXPECT_EQ(table.class_of(g), "C");
}

TEST(GoidTable, RejectsDuplicatesAndConflicts) {
  GoidTable table;
  (void)table.register_entity("C", {LOid{DbId{1}, 1}});
  EXPECT_THROW((void)table.register_entity("C", {LOid{DbId{1}, 1}}),
               FederationError)
      << "an LOid maps to exactly one entity";
  EXPECT_THROW(
      (void)table.register_entity("C", {LOid{DbId{1}, 2}, LOid{DbId{1}, 3}}),
      FederationError)
      << "one entity cannot have two objects in the same database";
  EXPECT_THROW((void)table.register_entity("C", {}), FederationError);
}

TEST(GoidTable, AddIsomer) {
  GoidTable table;
  const GOid g = table.register_entity("C", {LOid{DbId{1}, 1}});
  table.add_isomer(g, LOid{DbId{2}, 4});
  EXPECT_EQ(table.isomers_of(g).size(), 2u);
  EXPECT_THROW(table.add_isomer(g, LOid{DbId{2}, 5}), FederationError);
  EXPECT_THROW(table.add_isomer(g, LOid{DbId{2}, 4}), FederationError);
}

TEST(GoidTable, EntitiesOfClass) {
  GoidTable table;
  const GOid a = table.register_entity("C", {LOid{DbId{1}, 1}});
  (void)table.register_entity("D", {LOid{DbId{1}, 2}});
  const GOid c = table.register_entity("C", {LOid{DbId{1}, 3}});
  EXPECT_EQ(table.entities_of("C"), (std::vector<GOid>{a, c}));
  EXPECT_TRUE(table.entities_of("Nope").empty());
}

TEST(GoidTable, Globalize) {
  GoidTable table;
  const GOid g = table.register_entity("C", {LOid{DbId{1}, 1}});
  EXPECT_EQ(table.globalize(Value(LocalRef{LOid{DbId{1}, 1}})),
            Value(GlobalRef{g}));
  EXPECT_TRUE(table.globalize(Value(LocalRef{LOid{DbId{1}, 99}})).is_null())
      << "unmapped refs globalize to null";
  EXPECT_EQ(table.globalize(Value(42)), Value(42));
  EXPECT_EQ(
      table.globalize(Value(LocalRefSet{{LOid{DbId{1}, 1}}})),
      Value(GlobalRefSet{{g}}));
}

// --- isomerism detection ---

struct TwoDbFixture {
  std::unique_ptr<ComponentDatabase> db1, db2;
  GlobalSchema global;

  explicit TwoDbFixture(bool with_identity = true) {
    ComponentSchema s1(DbId{1}, "DB1");
    s1.add_class("P")
        .add_attribute("key", PrimType::Int)
        .add_attribute("a", PrimType::Int);
    ComponentSchema s2(DbId{2}, "DB2");
    s2.add_class("P")
        .add_attribute("key", PrimType::Int)
        .add_attribute("b", PrimType::Int);
    db1 = std::make_unique<ComponentDatabase>(std::move(s1));
    db2 = std::make_unique<ComponentDatabase>(std::move(s2));
    IntegrationSpec spec;
    ClassSpec& p = spec.add_class("P");
    p.constituents = {{DbId{1}, "P"}, {DbId{2}, "P"}};
    if (with_identity) p.identity_attribute = "key";
    global = integrate({&db1->schema(), &db2->schema()}, spec);
  }
};

TEST(Isomerism, MatchesOnIdentityValue) {
  TwoDbFixture fix;
  const LOid a = fix.db1->insert("P", {{"key", 7}, {"a", 1}});
  const LOid b = fix.db2->insert("P", {{"key", 7}, {"b", 2}});
  const LOid lone = fix.db2->insert("P", {{"key", 8}});
  const GoidTable table =
      detect_isomerism(fix.global, {fix.db1.get(), fix.db2.get()});
  EXPECT_EQ(table.entity_count(), 2u);
  EXPECT_EQ(table.goid_of(a), table.goid_of(b));
  EXPECT_NE(table.goid_of(a), table.goid_of(lone));
}

TEST(Isomerism, NullIdentityMakesSingletons) {
  TwoDbFixture fix;
  const LOid a = fix.db1->insert("P", {});
  const LOid b = fix.db2->insert("P", {});
  const GoidTable table =
      detect_isomerism(fix.global, {fix.db1.get(), fix.db2.get()});
  EXPECT_EQ(table.entity_count(), 2u);
  EXPECT_NE(table.goid_of(a), table.goid_of(b));
}

TEST(Isomerism, NoIdentityAttributeMakesSingletons) {
  TwoDbFixture fix(false);
  (void)fix.db1->insert("P", {{"key", 7}});
  (void)fix.db2->insert("P", {{"key", 7}});
  const GoidTable table =
      detect_isomerism(fix.global, {fix.db1.get(), fix.db2.get()});
  EXPECT_EQ(table.entity_count(), 2u);
}

TEST(Isomerism, DuplicateIdentityWithinOneDatabaseThrows) {
  TwoDbFixture fix;
  (void)fix.db1->insert("P", {{"key", 7}});
  (void)fix.db1->insert("P", {{"key", 7}});
  EXPECT_THROW(
      (void)detect_isomerism(fix.global, {fix.db1.get(), fix.db2.get()}),
      FederationError);
}

TEST(Isomerism, EveryObjectIsMapped) {
  TwoDbFixture fix;
  for (int i = 0; i < 10; ++i) (void)fix.db1->insert("P", {{"key", i}});
  for (int i = 5; i < 15; ++i) (void)fix.db2->insert("P", {{"key", i}});
  const GoidTable table =
      detect_isomerism(fix.global, {fix.db1.get(), fix.db2.get()});
  EXPECT_EQ(table.entity_count(), 15u);  // 5 shared + 5 + 5 exclusive
  for (const Object& obj : fix.db1->extent("P").objects())
    EXPECT_TRUE(table.goid_of(obj.id()).has_value());
}

// --- federation validation ---

TEST(Federation, RejectsUnmappedConstituentObjects) {
  TwoDbFixture fix;
  (void)fix.db1->insert("P", {{"key", 1}});
  GoidTable empty;
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(fix.db1));
  dbs.push_back(std::move(fix.db2));
  EXPECT_THROW(Federation(std::move(fix.global), std::move(dbs),
                          std::move(empty)),
               FederationError);
}

TEST(Federation, RejectsGOidForNonexistentObject) {
  TwoDbFixture fix;
  GoidTable table;
  (void)table.register_entity("P", {LOid{DbId{1}, 42}});
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(fix.db1));
  dbs.push_back(std::move(fix.db2));
  EXPECT_THROW(
      Federation(std::move(fix.global), std::move(dbs), std::move(table)),
      FederationError);
}

TEST(Federation, RejectsDuplicateDbIds) {
  TwoDbFixture fix1, fix2;
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(fix1.db1));
  dbs.push_back(std::move(fix2.db1));  // also DbId{1}
  EXPECT_THROW(
      Federation(std::move(fix1.global), std::move(dbs), GoidTable{}),
      FederationError);
}

TEST(Federation, ConsistencyCheckerFlagsConflicts) {
  TwoDbFixture fix;
  ComponentSchema s1b(DbId{1}, "x");  // unused; keep structure simple
  (void)s1b;
  const LOid a = fix.db1->insert("P", {{"key", 7}, {"a", 1}});
  const LOid b = fix.db2->insert("P", {{"key", 8}, {"b", 2}});
  GoidTable table;
  (void)table.register_entity("P", {a, b});  // assert isomerism by hand
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(fix.db1));
  dbs.push_back(std::move(fix.db2));
  const Federation federation(std::move(fix.global), std::move(dbs),
                              std::move(table));
  const auto violations = federation.check_consistency();
  ASSERT_EQ(violations.size(), 1u) << "key differs: 7 vs 8";
  EXPECT_NE(violations[0].find("key"), std::string::npos);
}

TEST(Federation, ConsistencyAcceptsNullsAndDisjointAttributes) {
  TwoDbFixture fix;
  const LOid a = fix.db1->insert("P", {{"key", 7}, {"a", 1}});
  const LOid b = fix.db2->insert("P", {{"key", 7}, {"b", 2}});
  GoidTable table;
  (void)table.register_entity("P", {a, b});
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(fix.db1));
  dbs.push_back(std::move(fix.db2));
  const Federation federation(std::move(fix.global), std::move(dbs),
                              std::move(table));
  EXPECT_TRUE(federation.check_consistency().empty())
      << "a and b are exclusive; key agrees; nothing conflicts";
}

TEST(Federation, DbAccessors) {
  TwoDbFixture fix;
  const LOid a = fix.db1->insert("P", {{"key", 1}});
  GoidTable table;
  (void)table.register_entity("P", {a});
  std::vector<std::unique_ptr<ComponentDatabase>> dbs;
  dbs.push_back(std::move(fix.db2));
  dbs.push_back(std::move(fix.db1));  // intentionally unsorted
  const Federation federation(std::move(fix.global), std::move(dbs),
                              std::move(table));
  EXPECT_EQ(federation.db_count(), 2u);
  EXPECT_EQ(federation.db_ids(), (std::vector<DbId>{DbId{1}, DbId{2}}));
  EXPECT_EQ(federation.db(DbId{1}).db(), DbId{1});
  EXPECT_THROW((void)federation.db(DbId{9}), FederationError);
}

}  // namespace
}  // namespace isomer
