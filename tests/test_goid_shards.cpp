// The sharded open-addressing LOid -> GOid table: agreement with a
// reference std::unordered_map under randomized registration (driving the
// shards through several growth/rehash cycles), batch-probe equivalence
// with the scalar path, metering of batch probes, and the merged presence
// probe used by certification.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "isomer/common/error.hpp"
#include "isomer/common/rng.hpp"
#include "isomer/federation/goid_table.hpp"

namespace isomer {
namespace {

class GoidShards : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoidShards, AgreesWithReferenceMapAcrossGrowth) {
  Rng rng(GetParam());
  GoidTable table;
  std::unordered_map<LOid, GOid> reference;
  std::vector<LOid> keys;
  // Enough singleton entities to force every shard through multiple grows
  // (shards start at capacity 16 and split the keyspace 16 ways).
  const std::size_t n = 3000 + rng.index(2000);
  for (std::size_t i = 0; i < n; ++i) {
    const LOid id{DbId{static_cast<std::uint16_t>(1 + rng.index(4))},
                  static_cast<std::uint32_t>(i + 1)};
    const GOid entity = table.register_entity("C", {id});
    reference.emplace(id, entity);
    keys.push_back(id);
  }
  for (const auto& [id, entity] : reference) {
    const auto found = table.goid_of(id);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, entity);
  }
  // Absent keys: same local ids in an unused database, and locals past the
  // allocated range.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(
        table.goid_of({DbId{9}, static_cast<std::uint32_t>(i + 1)}));
    EXPECT_FALSE(table.goid_of(
        {DbId{1}, static_cast<std::uint32_t>(n + 1 + rng.index(1000))}));
  }

  // Batch probe == scalar probe, element for element, including misses.
  std::vector<LOid> probes = keys;
  probes.push_back({DbId{9}, 1});
  probes.push_back({DbId{1}, static_cast<std::uint32_t>(n + 7)});
  for (std::size_t i = probes.size(); i > 1; --i)
    std::swap(probes[i - 1], probes[rng.index(i)]);
  std::vector<GOid> out(probes.size());
  AccessMeter batch_meter;
  table.goids_of(probes, out.data(), &batch_meter);
  AccessMeter scalar_meter;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto scalar = table.goid_of(probes[i], &scalar_meter);
    if (scalar.has_value())
      EXPECT_EQ(out[i], *scalar) << "probe " << i;
    else
      EXPECT_EQ(out[i], GOid{0}) << "probe " << i;
  }
  // One table probe per element, exactly what the scalar sequence charges.
  EXPECT_EQ(batch_meter.table_probes, probes.size());
  EXPECT_EQ(batch_meter.table_probes, scalar_meter.table_probes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoidShards,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(GoidShards, ReserveDoesNotChangeAnswers) {
  GoidTable plain, reserved;
  reserved.reserve(5000);
  for (std::uint32_t i = 1; i <= 5000; ++i) {
    const LOid id{DbId{1}, i};
    const GOid a = plain.register_entity("C", {id});
    const GOid b = reserved.register_entity("C", {id});
    EXPECT_EQ(a, b);
  }
  for (std::uint32_t i = 1; i <= 5000; ++i) {
    const LOid id{DbId{1}, i};
    EXPECT_EQ(plain.goid_of(id), reserved.goid_of(id));
  }
}

TEST(GoidShards, DuplicateAndCrossDbRulesSurviveSharding) {
  GoidTable table;
  const LOid a{DbId{1}, 1};
  const LOid b{DbId{2}, 1};
  table.register_entity("C", {a, b});
  EXPECT_THROW(table.register_entity("C", {a}), FederationError)
      << "an LOid may map to only one entity";
  EXPECT_THROW(table.register_entity("C", {{DbId{3}, 1}, {DbId{3}, 2}}),
               FederationError)
      << "at most one isomer per database";
}

TEST(GoidShards, PresentInMatchesLoidInLoop) {
  Rng rng(77);
  GoidTable table;
  std::vector<GOid> entities;
  for (std::uint32_t i = 1; i <= 500; ++i) {
    std::vector<LOid> isomers{{DbId{1}, i}};
    if (rng.bernoulli(0.5)) isomers.push_back({DbId{2}, i});
    if (rng.bernoulli(0.25)) isomers.push_back({DbId{3}, i});
    entities.push_back(table.register_entity("C", isomers));
  }
  const std::vector<DbId> homes{DbId{1}, DbId{2}, DbId{3}, DbId{4}};
  for (const GOid entity : entities) {
    AccessMeter merged_meter, loop_meter;
    const std::size_t merged = table.present_in(entity, homes, &merged_meter);
    std::size_t counted = 0;
    for (const DbId home : homes)
      if (table.loid_in(entity, home, &loop_meter)) ++counted;
    EXPECT_EQ(merged, counted);
    EXPECT_EQ(merged_meter.table_probes, loop_meter.table_probes)
        << "merged presence probe must charge exactly the per-home loop";
  }
}

TEST(GoidShards, EntitiesOfHeterogeneousLookup) {
  GoidTable table;
  const GOid e = table.register_entity("Student", {{DbId{1}, 1}});
  // string_view / const char* lookups must find the same vector without
  // allocating a temporary std::string key.
  const std::string_view sv = "Student";
  EXPECT_EQ(table.entities_of(sv).size(), 1u);
  EXPECT_EQ(table.entities_of("Student").front(), e);
  EXPECT_TRUE(table.entities_of("Nobody").empty());
}

}  // namespace
}  // namespace isomer
