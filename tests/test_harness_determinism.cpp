// The bench harness's Monte-Carlo runner must produce bitwise-identical
// figures at every --jobs value: trial i always draws from the stream
// Rng(derive_stream(seed, i)) and per-trial results are reduced in trial
// order, so the thread count can only change wall-clock time, never output.
#include <gtest/gtest.h>

#include "harness.hpp"

namespace isomer {
namespace {

using bench::SeriesPoint;

bench::HarnessOptions tiny_options() {
  bench::HarnessOptions options;
  options.samples = 6;
  options.seed = 77;
  return options;
}

ParamConfig tiny_config() {
  ParamConfig config;
  config.n_objects = {40, 60};  // keep the DES side fast
  return config;
}

void expect_bitwise_equal(const std::vector<SeriesPoint>& a,
                          const std::vector<SeriesPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    // Exact equality on purpose: the sums run in the same order regardless
    // of the thread count, so even floating-point results are identical.
    EXPECT_EQ(a[k].total_s, b[k].total_s);
    EXPECT_EQ(a[k].response_s, b[k].response_s);
    EXPECT_EQ(a[k].bytes_mb, b[k].bytes_mb);
    EXPECT_EQ(a[k].messages, b[k].messages);
    EXPECT_EQ(a[k].certain_rows, b[k].certain_rows);
    EXPECT_EQ(a[k].maybe_rows, b[k].maybe_rows);
    EXPECT_EQ(a[k].unavailable_rows, b[k].unavailable_rows);
    EXPECT_EQ(a[k].dead_sites, b[k].dead_sites);
    EXPECT_EQ(a[k].retries, b[k].retries);
  }
}

TEST(HarnessDeterminism, RunPointIdenticalAcrossJobCounts) {
  const bench::HarnessOptions options = tiny_options();
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::BL,
                                           StrategyKind::PL};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> serial =
      bench::run_point(config, kinds, options.samples, options.seed,
                       /*jobs=*/1);
  for (const int jobs : {2, 4, 8}) {
    const std::vector<SeriesPoint> parallel = bench::run_point(
        config, kinds, options.samples, options.seed, jobs);
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(HarnessDeterminism, RunPointIdenticalOnCollisionBus) {
  const bench::HarnessOptions options = tiny_options();
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::PL};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> serial =
      bench::run_point(config, kinds, options.samples, options.seed, 1,
                       NetworkTopology::CollisionBus);
  const std::vector<SeriesPoint> parallel =
      bench::run_point(config, kinds, options.samples, options.seed, 4,
                       NetworkTopology::CollisionBus);
  expect_bitwise_equal(serial, parallel);
}

TEST(HarnessDeterminism, FaultedRunPointIdenticalOnCollisionBus) {
  // The CollisionBus (1 + alpha*k) pending-count is per-Cluster state: every
  // trial owns a private Simulator+Cluster pair, so the backlog k a transfer
  // observes is a function of that trial's event order alone, never of how
  // many trials run concurrently. Faults + retries make this the stress
  // case — retransmissions are extra transfers that would skew k if any
  // state leaked across threads.
  const bench::HarnessOptions options = tiny_options();
  const fault::FaultSpec faults = fault::parse_fault_spec(
      "drop=0.1,spike=0.2:1ms,down=2,seed=5,retries=8,degrade=partial");
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::BL,
                                           StrategyKind::PL};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> serial =
      bench::run_point(config, kinds, options.samples, options.seed, 1,
                       NetworkTopology::CollisionBus, 0.3, nullptr, &faults);
  EXPECT_GT(serial[0].retries, 0.0);
  for (const int jobs : {2, 4}) {
    const std::vector<SeriesPoint> parallel =
        bench::run_point(config, kinds, options.samples, options.seed, jobs,
                         NetworkTopology::CollisionBus, 0.3, nullptr,
                         &faults);
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(HarnessDeterminism, BatchedRunPointIdenticalAcrossJobCounts) {
  // --batch=on must stay --jobs-invariant like everything else, and must
  // actually engage: coalescing can only merge messages, never add any.
  const bench::HarnessOptions options = tiny_options();
  BatchOptions batch;
  batch.enabled = true;
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::BL,
                                           StrategyKind::PL};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> plain = bench::run_point(
      config, kinds, options.samples, options.seed, /*jobs=*/1);
  const std::vector<SeriesPoint> serial =
      bench::run_point(config, kinds, options.samples, options.seed, 1,
                       NetworkTopology::SharedBus, 0.3, nullptr, nullptr,
                       &batch);
  for (std::size_t k = 0; k < kinds.size(); ++k)
    EXPECT_LT(serial[k].messages, plain[k].messages)
        << to_string(kinds[k]) << " shipped no fewer frames than messages";
  for (const int jobs : {2, 4}) {
    const std::vector<SeriesPoint> parallel =
        bench::run_point(config, kinds, options.samples, options.seed, jobs,
                         NetworkTopology::SharedBus, 0.3, nullptr, nullptr,
                         &batch);
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(HarnessDeterminism, TrialsSeeIdenticalStreamsAtAnyJobCount) {
  constexpr int kSamples = 16;
  std::vector<std::uint64_t> serial(kSamples), parallel(kSamples);
  bench::for_each_trial(kSamples, 1234, 1, [&](std::size_t i, Rng& rng) {
    serial[i] = rng();
  });
  bench::for_each_trial(kSamples, 1234, 4, [&](std::size_t i, Rng& rng) {
    parallel[i] = rng();
  });
  EXPECT_EQ(serial, parallel);
}

TEST(HarnessDeterminism, FaultedRunPointIdenticalAcrossJobCounts) {
  // The retry/backoff/degrade machinery must stay --jobs-invariant: each
  // trial derives its own fault-plan seed, so the thread count cannot move
  // a single figure — timing, traffic or answer quality.
  const bench::HarnessOptions options = tiny_options();
  const fault::FaultSpec faults = fault::parse_fault_spec(
      "drop=0.1,spike=0.2:1ms,down=2,seed=5,retries=8,degrade=partial");
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::BL,
                                           StrategyKind::PL};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> serial =
      bench::run_point(config, kinds, options.samples, options.seed, 1,
                       NetworkTopology::SharedBus, 0.3, nullptr, &faults);
  // Sanity that the plan actually fired: retransmissions happened and the
  // planned outage degraded the answers.
  EXPECT_GT(serial[0].retries, 0.0);
  EXPECT_GT(serial[0].dead_sites, 0.0);
  for (const int jobs : {2, 4, 8}) {
    const std::vector<SeriesPoint> parallel =
        bench::run_point(config, kinds, options.samples, options.seed, jobs,
                         NetworkTopology::SharedBus, 0.3, nullptr, &faults);
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(HarnessDeterminism, DisabledFaultSpecMatchesNoSpecBitwise) {
  // --faults=drop=0 parses to a disabled plan; run_point must take the
  // exact fault-free code path, leaving every figure untouched.
  const bench::HarnessOptions options = tiny_options();
  const fault::FaultSpec inert = fault::parse_fault_spec("drop=0");
  ASSERT_FALSE(inert.plan.enabled());
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::BL,
                                           StrategyKind::PL};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> plain =
      bench::run_point(config, kinds, options.samples, options.seed, 2);
  const std::vector<SeriesPoint> gated =
      bench::run_point(config, kinds, options.samples, options.seed, 2,
                       NetworkTopology::SharedBus, 0.3, nullptr, &inert);
  expect_bitwise_equal(plain, gated);
  for (const SeriesPoint& point : gated) {
    EXPECT_EQ(point.retries, 0.0);
    EXPECT_EQ(point.dead_sites, 0.0);
    EXPECT_EQ(point.unavailable_rows, 0.0);
  }
}

TEST(HarnessDeterminism, SeedChangesOutput) {
  // Sanity: the determinism above is not "everything collapses to one
  // value" — different seeds must actually move the figures.
  const std::vector<StrategyKind> kinds = {StrategyKind::CA};
  const ParamConfig config = tiny_config();
  const std::vector<SeriesPoint> a =
      bench::run_point(config, kinds, 4, 1, 2);
  const std::vector<SeriesPoint> b =
      bench::run_point(config, kinds, 4, 2, 2);
  EXPECT_NE(a[0].total_s, b[0].total_s);
}

}  // namespace
}  // namespace isomer
