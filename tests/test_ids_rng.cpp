// Strong identifiers and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "isomer/common/ids.hpp"
#include "isomer/common/rng.hpp"

namespace isomer {
namespace {

TEST(Ids, StrongIdsAreDistinctTypes) {
  static_assert(!std::is_same_v<DbId, GOid>);
  static_assert(!std::is_convertible_v<DbId, GOid>);
  static_assert(!std::is_convertible_v<std::uint64_t, GOid>);
}

TEST(Ids, Ordering) {
  EXPECT_LT(GOid{1}, GOid{2});
  EXPECT_EQ(DbId{3}, DbId{3});
  EXPECT_LT((LOid{DbId{1}, 9}), (LOid{DbId{2}, 1}));
  EXPECT_LT((LOid{DbId{1}, 1}), (LOid{DbId{1}, 2}));
}

TEST(Ids, LOidHashSpreadsAcrossDatabases) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint16_t db = 1; db <= 8; ++db)
    for (std::uint32_t local = 1; local <= 64; ++local)
      hashes.insert(std::hash<LOid>{}(LOid{DbId{db}, local}));
  EXPECT_EQ(hashes.size(), 8u * 64u);  // no collisions on this small set
}

TEST(Ids, Printing) {
  EXPECT_EQ(to_string(LOid{DbId{2}, 7}), "o7@DB2");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.uniform_int(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(9);
  EXPECT_THROW((void)rng.uniform_int(2, 1), ContractViolation);
}

TEST(Rng, UniformRealInHalfOpenRange) {
  Rng rng(10);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(x, 0.25);
    EXPECT_LT(x, 0.75);
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> buckets{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    ++buckets[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (const int count : buckets) {
    EXPECT_GT(count, n / 10 - n / 50);
    EXPECT_LT(count, n / 10 + n / 50);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliClamps) {
  Rng rng(13);
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_indices(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const std::size_t index : sample) EXPECT_LT(index, 20u);
  }
}

TEST(Rng, SampleIndicesFullPermutation) {
  Rng rng(15);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(16);
  EXPECT_THROW((void)rng.sample_indices(3, 4), ContractViolation);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.fork();
  // The child is deterministic given the parent's state...
  Rng parent2(17);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child(), child2());
  // ...and consuming the child does not perturb the parent's stream.
  Rng parent3(17);
  (void)parent3.fork();
  EXPECT_EQ(parent2(), parent3());
}

TEST(Rng, IndexRequiresNonEmpty) {
  Rng rng(18);
  EXPECT_THROW((void)rng.index(0), ContractViolation);
  EXPECT_EQ(rng.index(1), 0u);
}

}  // namespace
}  // namespace isomer
