// Property suite for the IM strategy (core/im.cpp) and its population
// model (analytic/impute.hpp) — the probabilistic-certification contract:
//
//   * thresh=1.0 identity, 200 seeds: smoothed confidences are strictly
//     below 1, so a threshold of 1.0 never clears a check and IM is
//     *bitwise* identical to BL — full StrategyReport digest, every cost
//     figure and simulator timestamp — including composed with batching,
//     the row-at-a-time reference path (columnar off), and fault injection
//     with partial degradation;
//   * confidence calibration at a working threshold: pooled over many
//     seeds, the precision of the confident rows against the complete-data
//     ground truth (the clean twin re-materialized with R_m = 0) is at
//     least the threshold, rows that consumed an estimate carry a
//     confidence in [thresh, 1), and exact rows carry exactly 1;
//   * --jobs invariance: the bench-harness trial loop produces bitwise
//     identical per-trial IM digests at every thread count;
//   * executing IM without an oracle is a hard ImputeError — the
//     estimators live a layer above core and cannot be conjured there.
//
// The --impute spec grammar itself is fuzzed in test_parser_fuzz.cpp.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "isomer/analytic/impute.hpp"
#include "isomer/common/error.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/fault/fault_plan.hpp"
#include "isomer/workload/synth.hpp"

#include "harness.hpp"
#include "report_digest.hpp"

namespace isomer {
namespace {

using testing::report_digest_line;

ParamConfig small_config(std::size_t n_db, double miss_rate) {
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {20, 40};  // scaled down; structure unchanged
  config.forced_missing_rate = miss_rate;
  return config;
}

/// The clean twin of a drawn sample: R_m forced to zero everywhere. The
/// injection draws happen after the whole entity universe is drawn, so the
/// twin materializes the identical entities, LOids and GOids — only the
/// value nulls differ (see bench/bench_impute.cpp).
SampleParams clean_twin(SampleParams sample) {
  for (auto& cls : sample.classes)
    for (auto& db : cls.dbs) db.extra_missing = 0;
  return sample;
}

// ---- thresh = 1.0 bitwise identity -----------------------------------

class ImThresholdOneIdentity : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ImThresholdOneIdentity, ImIsBitwiseBlUnderEveryComposition) {
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const double miss = rng.uniform_real(0.05, 0.35);
  const SampleParams sample = draw_sample(small_config(n_db, miss), rng);
  const SynthFederation synth = materialize_sample(sample);
  const ImputeModel model = ImputeModel::build(*synth.federation);

  // A deterministic outage plus message drops: at thresh=1.0 the filter
  // strips nothing, so the message sequence — and with it the per-attempt
  // fault RNG replay — is identical and even the faulted run must match.
  fault::FaultPlan plan;
  plan.seed = derive_stream(0x13B1'7F00ULL, GetParam());
  if (rng.bernoulli(0.4))
    plan.outages.push_back(
        fault::Outage{DbId{static_cast<std::uint16_t>(2)}, 0, fault::kForever});
  plan.drop_probability = 0.05;

  struct Variant {
    const char* label;
    bool columnar;
    bool batch;
    bool faults;
  };
  const Variant variants[] = {
      {"plain", true, false, false},
      {"row-at-a-time", false, false, false},
      {"batched", true, true, false},
      {"faulted", true, false, true},
      {"all-composed", false, true, true},
  };
  for (const Variant& v : variants) {
    StrategyOptions exec;
    exec.record_trace = false;
    exec.columnar = v.columnar;
    exec.batch.enabled = v.batch;
    if (v.faults) {
      exec.faults = &plan;
      exec.retry.max_retries = 8;
      exec.degrade = fault::DegradeMode::Partial;
    }
    const StrategyReport bl =
        execute_strategy(StrategyKind::BL, *synth.federation, synth.query,
                         exec);
    exec.impute = &model;
    exec.impute_threshold = 1.0;
    const StrategyReport im =
        execute_strategy(StrategyKind::IM, *synth.federation, synth.query,
                         exec);
    EXPECT_EQ(report_digest_line(v.label, im), report_digest_line(v.label, bl))
        << "seed " << GetParam();
    EXPECT_EQ(im.imputed_atoms, 0u) << v.label << " seed " << GetParam();
    for (const ResultRow& row : im.result.rows)
      EXPECT_EQ(row.confidence, 1.0)
          << v.label << " row " << row.entity.value() << " seed "
          << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImThresholdOneIdentity,
                         ::testing::Range<std::uint64_t>(1, 201));

// ---- confidence calibration ------------------------------------------

TEST(ImCalibration, ConfidentRowPrecisionReachesTheThreshold) {
  // Pooled over 40 seeds at R_m = 0.3 and the documented working threshold
  // (see bench_impute): among certain rows whose certification consumed an
  // estimate, the fraction actually in the complete-data answer is at least
  // the threshold, and the per-row confidence bounds hold exactly.
  constexpr double kThreshold = 0.5;
  std::uint64_t imputed = 0, imputed_correct = 0, imputed_atoms = 0;
  // Populations large enough for informative histograms (the 20-40-object
  // identity federations are deliberately starved; a calibration claim
  // needs the estimators to actually see a distribution).
  ParamConfig config = small_config(3, 0.30);
  config.n_objects = {150, 300};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(derive_stream(0xCA11'B8A7ULL, seed));
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    const SynthFederation clean = materialize_sample(clean_twin(sample));
    std::set<std::uint64_t> truth;
    const QueryResult complete =
        reference_answer(*clean.federation, clean.query);
    for (const ResultRow& row : complete.rows)
      if (row.status == ResultStatus::Certain)
        truth.insert(row.entity.value());
    const ImputeModel model = ImputeModel::build(*synth.federation);

    StrategyOptions exec;
    exec.record_trace = false;
    exec.impute = &model;
    exec.impute_threshold = kThreshold;
    const StrategyReport report = execute_strategy(
        StrategyKind::IM, *synth.federation, synth.query, exec);
    imputed_atoms += report.imputed_atoms;
    for (const ResultRow& row : report.result.rows) {
      if (row.status != ResultStatus::Certain) continue;
      if (row.confidence >= 1.0) {
        EXPECT_EQ(row.confidence, 1.0);  // exact rows are exactly exact
        continue;
      }
      // An upgraded row's confidence is a product of cleared estimates,
      // each at or above the threshold — but the *row* commits only when
      // its whole condition decides, so the product itself must clear too.
      EXPECT_GE(row.confidence, kThreshold)
          << "seed " << seed << " row " << row.entity.value();
      ++imputed;
      if (truth.count(row.entity.value()) > 0) ++imputed_correct;
    }
  }
  ASSERT_GT(imputed_atoms, 0u) << "the model never cleared a check";
  ASSERT_GT(imputed, 0u) << "no row ever consumed an estimate";
  EXPECT_GE(static_cast<double>(imputed_correct),
            kThreshold * static_cast<double>(imputed))
      << "pooled precision " << imputed_correct << "/" << imputed
      << " fell below the confidence threshold";
}

// ---- --jobs invariance -----------------------------------------------

TEST(ImJobsDeterminism, TrialDigestsIdenticalAcrossJobCounts) {
  // The IM trial body — sample, model build, execution — through the bench
  // harness's parallel runner: trial i always draws from the stream
  // derive_stream(seed, i) and the model build is deterministic in the
  // federation contents, so every --jobs value must reproduce the same
  // per-trial report digests bitwise.
  constexpr int kSamples = 6;
  const auto run = [&](int jobs) {
    std::vector<std::string> digests(kSamples);
    bench::for_each_trial(kSamples, /*seed=*/77, jobs,
                          [&](std::size_t s, Rng& rng) {
      const SampleParams sample = draw_sample(small_config(3, 0.25), rng);
      const SynthFederation synth = materialize_sample(sample);
      const ImputeModel model = ImputeModel::build(*synth.federation);
      StrategyOptions exec;
      exec.record_trace = false;
      exec.impute = &model;
      exec.impute_threshold = 0.5;
      const StrategyReport report = execute_strategy(
          StrategyKind::IM, *synth.federation, synth.query, exec);
      digests[s] =
          report_digest_line("t" + std::to_string(s), report) +
          " imputed=" + std::to_string(report.imputed_atoms) +
          " declined=" + std::to_string(report.impute_declined);
    });
    return digests;
  };
  const std::vector<std::string> serial = run(1);
  for (const int jobs : {2, 4})
    EXPECT_EQ(run(jobs), serial) << "jobs=" << jobs;
}

// ---- error surface ----------------------------------------------------

TEST(ImErrors, ExecutingWithoutAnOracleThrows) {
  Rng rng(0x1111ULL);
  const SampleParams sample = draw_sample(small_config(3, 0.15), rng);
  const SynthFederation synth = materialize_sample(sample);
  StrategyOptions exec;  // impute oracle left null
  exec.record_trace = false;
  EXPECT_THROW((void)execute_strategy(StrategyKind::IM, *synth.federation,
                                      synth.query, exec),
               ImputeError);
}

}  // namespace
}  // namespace isomer
