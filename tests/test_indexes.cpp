// Extent indexes: identical answers, preserved maybe semantics (the null
// bucket), and reduced disk work for the localized strategies.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/federation/indexes.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

SynthFederation eq_workload(std::uint64_t seed, int objects = 200) {
  Rng rng(seed);
  ParamConfig config;
  config.n_objects = {objects, objects + 50};
  config.n_preds = {1, 3};  // ensure at least one equality predicate
  return materialize_sample(draw_sample(config, rng));
}

/// The generated root-class predicates are `p_j = 0`, single-step equality —
/// index-eligible whenever the root class carries one.
bool has_root_eq_pred(const GlobalQuery& query) {
  for (const Predicate& pred : query.predicates)
    if (pred.path.length() == 1 && pred.op == CompOp::Eq) return true;
  return false;
}

TEST(Indexes, BuildCoversRootEqualityPredicates) {
  const SynthFederation synth = eq_workload(11);
  const ExtentIndexes indexes =
      ExtentIndexes::build(*synth.federation, synth.query);
  if (has_root_eq_pred(synth.query)) EXPECT_GT(indexes.index_count(), 0u);
}

TEST(Indexes, LookupSeparatesMatchesFromNullBucket) {
  const SynthFederation synth = eq_workload(12);
  if (!has_root_eq_pred(synth.query)) GTEST_SKIP();
  const ExtentIndexes indexes =
      ExtentIndexes::build(*synth.federation, synth.query);
  const Predicate* eq = nullptr;
  for (const Predicate& pred : synth.query.predicates)
    if (pred.path.length() == 1 && pred.op == CompOp::Eq) eq = &pred;
  ASSERT_NE(eq, nullptr);

  for (const DbId db : synth.federation->db_ids()) {
    const auto lookup =
        indexes.lookup(db, eq->path.step(0), eq->literal);
    if (!lookup) continue;  // attribute missing at this database
    const ComponentDatabase& database = synth.federation->db(db);
    const std::string& cls = database.class_of((*lookup->matches).empty()
                                                   ? (*lookup->unknowns)[0]
                                                   : (*lookup->matches)[0]);
    const auto attr =
        database.schema().cls(cls).find_attribute(eq->path.step(0));
    ASSERT_TRUE(attr.has_value());
    for (const LOid id : *lookup->matches)
      EXPECT_EQ(database.fetch(id)->value(*attr), eq->literal);
    for (const LOid id : *lookup->unknowns)
      EXPECT_TRUE(database.fetch(id)->value(*attr).is_null());
  }
}

TEST(Indexes, MissLiteralGivesNullBucketOnly) {
  const SynthFederation synth = eq_workload(13);
  if (!has_root_eq_pred(synth.query)) GTEST_SKIP();
  const ExtentIndexes indexes =
      ExtentIndexes::build(*synth.federation, synth.query);
  const Predicate* eq = nullptr;
  for (const Predicate& pred : synth.query.predicates)
    if (pred.path.length() == 1 && pred.op == CompOp::Eq) eq = &pred;
  for (const DbId db : synth.federation->db_ids()) {
    const auto lookup =
        indexes.lookup(db, eq->path.step(0), Value(123456789));
    if (!lookup) continue;
    EXPECT_TRUE(lookup->matches->empty());
  }
}

class IndexEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexEquivalence, SameAnswersLessDisk) {
  const SynthFederation synth = eq_workload(GetParam(), 150);
  const ExtentIndexes indexes =
      ExtentIndexes::build(*synth.federation, synth.query);

  StrategyOptions plain, indexed;
  plain.record_trace = indexed.record_trace = false;
  indexed.indexes = &indexes;

  for (const StrategyKind kind : {StrategyKind::BL, StrategyKind::PL}) {
    const StrategyReport without =
        execute_strategy(kind, *synth.federation, synth.query, plain);
    const StrategyReport with =
        execute_strategy(kind, *synth.federation, synth.query, indexed);
    EXPECT_EQ(with.result, without.result)
        << to_string(kind) << " seed " << GetParam();
    if (kind == StrategyKind::BL && has_root_eq_pred(synth.query) &&
        indexes.index_count() > 0)
      EXPECT_LE(with.disk_ns, without.disk_ns)
          << "index candidates never cost more disk than a scan";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence,
                         ::testing::Range<std::uint64_t>(900, 912));

TEST(Indexes, DisjunctiveQueriesFallBackToScans) {
  SynthFederation synth = eq_workload(14);
  if (synth.query.predicates.size() < 2) GTEST_SKIP();
  synth.query.disjuncts = {{0}, {1}};
  const ExtentIndexes indexes =
      ExtentIndexes::build(*synth.federation, synth.query);
  StrategyOptions plain, indexed;
  plain.record_trace = indexed.record_trace = false;
  indexed.indexes = &indexes;
  const auto without = execute_strategy(StrategyKind::BL, *synth.federation,
                                        synth.query, plain);
  const auto with = execute_strategy(StrategyKind::BL, *synth.federation,
                                     synth.query, indexed);
  EXPECT_EQ(with.result, without.result);
  EXPECT_EQ(with.disk_ns, without.disk_ns)
      << "an index must not prune objects that another alternative may save";
}

}  // namespace
}  // namespace isomer
