// Local execution: the translation-aware evaluator, row construction, and
// its consistency with the protocol-level LocalQuery derivation.
#include <gtest/gtest.h>

#include "isomer/core/local_exec.hpp"
#include "isomer/query/eval.hpp"
#include "isomer/schema/translate.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

class LocalExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    example_ = paper::make_university();
    query_ = paper::q1();
  }
  const Federation& fed() { return *example_.federation; }
  paper::UniversityExample example_;
  GlobalQuery query_;
};

TEST_F(LocalExecFixture, RowsCarryGlobalizedTargets) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  for (const LocalRow& row : exec.rows) {
    ASSERT_EQ(row.targets.size(), 2u);
    // advisor.name is a primitive target; values arrive as strings.
    if (!row.targets[1].is_null())
      EXPECT_EQ(row.targets[1].kind(), ValueKind::String);
  }
}

TEST_F(LocalExecFixture, MeterAccountsScanAndNavigation) {
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  EXPECT_EQ(exec.meter.objects_scanned, 3u);  // the Student extent
  EXPECT_GT(exec.meter.objects_fetched, 0u);  // advisors, departments
  EXPECT_GT(exec.meter.comparisons, 0u);
  EXPECT_GT(exec.meter.table_probes, 0u);  // row entity lookups
}

TEST_F(LocalExecFixture, BufferPoolFetchesEachObjectOnce) {
  // Students s1 and s2 share no advisor, but each advisor's department is
  // d1 for both t1 and t3 — with the per-execution buffer pool d1 is read
  // from disk exactly once.
  const LocalExecution exec = run_local_query(fed(), query_, DbId{1});
  // Fetched: t1, t3, t2 (advisors) + d1 (department of t1 and t3; t2's is
  // null). 4 distinct objects.
  EXPECT_EQ(exec.meter.objects_fetched, 4u);
}

TEST_F(LocalExecFixture, ThrowsAtNonRootDatabase) {
  EXPECT_THROW((void)run_local_query(fed(), query_, DbId{3}), QueryError);
}

TEST_F(LocalExecFixture, LocallyCertainHelper) {
  LocalRow row;
  row.preds.push_back(PredStatus{Truth::True, GOid{}, 0, false});
  EXPECT_TRUE(row.locally_certain());
  row.preds.push_back(PredStatus{Truth::Unknown, GOid{1}, 1, false});
  EXPECT_FALSE(row.locally_certain());
}

TEST_F(LocalExecFixture, EvalGlobalPathReturnsGlobalRefs) {
  const Object* s1 = fed().db(DbId{1}).fetch(example_.ids.s1);
  const Value advisor = eval_global_path(
      fed(), DbId{1}, *s1, fed().schema().cls("Student"),
      PathExpr::parse("advisor"));
  EXPECT_EQ(advisor, Value(GlobalRef{example_.entity(example_.ids.t1)}));
  const Value missing = eval_global_path(
      fed(), DbId{1}, *s1, fed().schema().cls("Student"),
      PathExpr::parse("address.city"));
  EXPECT_TRUE(missing.is_null());
}

// The two views of local evaluation must agree: evaluating the derived
// LocalQuery's local predicates with the plain component-database evaluator
// gives the same truths as the translation-aware global evaluator, and the
// schema-stripped predicates are exactly those the global evaluator can
// never resolve beyond Unknown for *any* object of that database.
class LocalViewsAgree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalViewsAgree, OnRandomWorkloads) {
  Rng rng(GetParam());
  ParamConfig config;
  config.n_objects = {20, 40};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  const Federation& fed = *synth.federation;
  const GlobalClass& range = fed.schema().cls(synth.query.range_class);

  for (const DbId db : fed.db_ids()) {
    const auto local = derive_local_query(fed.schema(), synth.query, db);
    ASSERT_TRUE(local.has_value());
    const ComponentDatabase& database = fed.db(db);

    for (const Object& obj : database.extent(local->root_class).objects()) {
      // (a) local predicates agree with the global evaluator.
      for (std::size_t lp = 0; lp < local->local_predicates.size(); ++lp) {
        const std::size_t gp = local->local_predicate_origin[lp];
        const Truth via_local =
            eval_predicate(database, obj, local->local_predicates[lp]).truth;
        const Truth via_global =
            eval_global_predicate_at(fed, db, obj, range,
                                     synth.query.predicates[gp], 0)
                .truth;
        EXPECT_EQ(via_local, via_global);
      }
      // (b) schema-stripped predicates are Unknown for every object here.
      for (const UnsolvedPredicate& unsolved : local->unsolved_predicates) {
        const Truth t =
            eval_global_predicate_at(fed, db, obj, range, unsolved.original, 0)
                .truth;
        EXPECT_EQ(t, Truth::Unknown);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalViewsAgree,
                         ::testing::Range<std::uint64_t>(300, 312));

}  // namespace
}  // namespace isomer
