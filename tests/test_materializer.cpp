// The centralized path: outerjoin materialization and global evaluation.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

class MaterializerFixture : public ::testing::Test {
 protected:
  void SetUp() override { example_ = paper::make_university(); }
  const Federation& fed() { return *example_.federation; }
  paper::UniversityExample example_;
};

TEST_F(MaterializerFixture, ClassesInvolvedFollowsAllPaths) {
  const GlobalQuery q1 = paper::q1();
  EXPECT_EQ(classes_involved(fed().schema(), q1),
            (std::vector<std::string>{"Student", "Teacher", "Address",
                                      "Department"}));

  GlobalQuery narrow;
  narrow.range_class = "Teacher";
  narrow.select("name");
  EXPECT_EQ(classes_involved(fed().schema(), narrow),
            (std::vector<std::string>{"Teacher"}));
}

TEST_F(MaterializerFixture, EveryEntityMaterializesOnce) {
  const MaterializedView view = materialize(fed(), {"Student"});
  EXPECT_EQ(view.extent("Student").size(), 5u);
  EXPECT_FALSE(view.has_extent("Teacher"));
  EXPECT_THROW((void)view.extent("Teacher"), FederationError);
}

TEST_F(MaterializerFixture, MissingValuesFilledFromIsomers) {
  const MaterializedView view = materialize(fed(), {"Student"});
  // s2' (DB2) has no age attribute; its isomer s1 (DB1) supplies 31.
  const MaterializedObject* john =
      view.extent("Student").find(example_.entity(example_.ids.s1));
  ASSERT_NE(john, nullptr);
  const auto age =
      fed().schema().cls("Student").def().find_attribute("age");
  EXPECT_EQ(john->values[*age], Value(31));
  // sex is null in DB1 and male in DB2: first non-null wins.
  const auto sex =
      fed().schema().cls("Student").def().find_attribute("sex");
  EXPECT_EQ(john->values[*sex], Value("male"));
}

TEST_F(MaterializerFixture, RefsRewrittenToGOids) {
  const MaterializedView view = materialize(fed(), {"Teacher"});
  const MaterializedObject* jeffery =
      view.extent("Teacher").find(example_.entity(example_.ids.t1));
  const auto dept =
      fed().schema().cls("Teacher").def().find_attribute("department");
  EXPECT_EQ(jeffery->values[*dept],
            Value(GlobalRef{example_.entity(example_.ids.d1)}));
}

TEST_F(MaterializerFixture, MeterCountsJoinWork) {
  AccessMeter meter;
  (void)materialize(fed(), {"Student"}, &meter);
  // 6 constituent student objects (3 in DB1, 3 in DB2) probe the join once
  // each.
  EXPECT_EQ(meter.comparisons, 6u);
  EXPECT_EQ(meter.objects_fetched, 6u);
  EXPECT_GT(meter.table_probes, 0u) << "ref globalization probes the tables";
}

TEST_F(MaterializerFixture, EvaluateGlobalClassifiesRows) {
  const GlobalQuery q1 = paper::q1();
  const MaterializedView view =
      materialize(fed(), classes_involved(fed().schema(), q1));
  AccessMeter meter;
  const QueryResult result =
      evaluate_global(view, fed().schema(), q1, &meter);
  EXPECT_EQ(result.certain_count(), 1u);
  EXPECT_EQ(result.maybe_count(), 1u);
  // Comparisons happen only when a navigation reaches the final attribute:
  // John/Hedy/Fanny evaluate all 3 predicates, Tony and Mary have a null
  // address (no comparison there) -> 3*3 + 2*2 = 13.
  EXPECT_EQ(meter.comparisons, 13u);
}

TEST_F(MaterializerFixture, EvaluateGlobalRejectsMalformedQuery) {
  GlobalQuery bad;
  bad.range_class = "Student";
  bad.where("nope", CompOp::Eq, 1);
  const MaterializedView view = materialize(fed(), {"Student"});
  EXPECT_THROW((void)evaluate_global(view, fed().schema(), bad), QueryError);
}

TEST_F(MaterializerFixture, QueryWithoutPredicatesReturnsAllCertain) {
  GlobalQuery all;
  all.range_class = "Department";
  all.select("name");
  const MaterializedView view = materialize(fed(), {"Department"});
  const QueryResult result = evaluate_global(view, fed().schema(), all);
  EXPECT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.certain_count(), 3u);
}

TEST_F(MaterializerFixture, NullTargetsStayNull) {
  GlobalQuery q;
  q.range_class = "Department";
  q.select("location");
  const MaterializedView view = materialize(fed(), {"Department"});
  const QueryResult result = evaluate_global(view, fed().schema(), q);
  // gd1 (CS): location null in DB1 and null in DB3's d2''.
  const ResultRow* cs = result.find(example_.entity(example_.ids.d1));
  ASSERT_NE(cs, nullptr);
  EXPECT_TRUE(cs->targets[0].is_null());
  // gd3 (PH) exists only in DB3 with a location.
  const ResultRow* ph = result.find(example_.entity(example_.ids.d3pp));
  EXPECT_EQ(ph->targets[0], Value("building D"));
}

TEST(QueryResult, Helpers) {
  QueryResult result;
  result.rows.push_back(ResultRow{GOid{2}, ResultStatus::Maybe, {}});
  result.rows.push_back(ResultRow{GOid{1}, ResultStatus::Certain, {}});
  result.normalize();
  EXPECT_EQ(result.rows[0].entity, GOid{1});
  EXPECT_EQ(result.certain_count(), 1u);
  EXPECT_EQ(result.maybe_count(), 1u);
  EXPECT_NE(result.find(GOid{2}), nullptr);
  EXPECT_EQ(result.find(GOid{3}), nullptr);
}

}  // namespace
}  // namespace isomer
