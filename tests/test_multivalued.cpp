// Multi-valued complex attributes — the paper's §5 third future-work item:
// a global set-valued attribute whose members come from different component
// databases, merged by union in the centralized materializer.
#include <gtest/gtest.h>

#include "isomer/federation/materializer.hpp"
#include "isomer/schema/integrator.hpp"

namespace isomer {
namespace {

/// Two research databases: each knows *some* of a professor's projects.
struct ProjectsFixture {
  std::unique_ptr<Federation> federation;
  LOid prof1, prof2, pa, pb, pc;
  GOid gprof, gpa, gpb, gpc;

  ProjectsFixture() {
    ComponentSchema s1(DbId{1}, "DB1");
    s1.add_class("Project").add_attribute("title", PrimType::String);
    s1.add_class("Prof")
        .add_attribute("name", PrimType::String)
        .add_attribute("projects", ComplexType{"Project", true});
    ComponentSchema s2(DbId{2}, "DB2");
    s2.add_class("Project").add_attribute("title", PrimType::String);
    s2.add_class("Prof")
        .add_attribute("name", PrimType::String)
        .add_attribute("projects", ComplexType{"Project", true});

    auto db1 = std::make_unique<ComponentDatabase>(std::move(s1));
    auto db2 = std::make_unique<ComponentDatabase>(std::move(s2));
    pa = db1->insert("Project", {{"title", "alpha"}});
    pb = db1->insert("Project", {{"title", "beta"}});
    prof1 = db1->insert(
        "Prof", {{"name", "Ada"}, {"projects", LocalRefSet{{pa, pb}}}});
    pc = db2->insert("Project", {{"title", "gamma"}});
    // DB2 also knows beta, under its own LOid.
    const LOid pb2 = db2->insert("Project", {{"title", "beta"}});
    prof2 = db2->insert(
        "Prof", {{"name", "Ada"}, {"projects", LocalRefSet{{pc, pb2}}}});

    IntegrationSpec spec;
    ClassSpec& prof = spec.add_class("Prof");
    prof.constituents = {{DbId{1}, "Prof"}, {DbId{2}, "Prof"}};
    prof.identity_attribute = "name";
    ClassSpec& project = spec.add_class("Project");
    project.constituents = {{DbId{1}, "Project"}, {DbId{2}, "Project"}};
    project.identity_attribute = "title";
    GlobalSchema schema = integrate({&db1->schema(), &db2->schema()}, spec);

    GoidTable goids;
    gprof = goids.register_entity("Prof", {prof1, prof2});
    gpa = goids.register_entity("Project", {pa});
    gpb = goids.register_entity("Project", {pb, pb2});
    gpc = goids.register_entity("Project", {pc});

    std::vector<std::unique_ptr<ComponentDatabase>> dbs;
    dbs.push_back(std::move(db1));
    dbs.push_back(std::move(db2));
    federation = std::make_unique<Federation>(std::move(schema),
                                              std::move(dbs),
                                              std::move(goids));
  }
};

TEST(MultiValued, FirstNonNullTakesOneDatabasesView) {
  const ProjectsFixture fix;
  const MaterializedView view = materialize(*fix.federation, {"Prof"});
  const MaterializedObject* ada = view.extent("Prof").find(fix.gprof);
  ASSERT_NE(ada, nullptr);
  const auto projects =
      fix.federation->schema().cls("Prof").def().find_attribute("projects");
  // DB1's set wins wholesale: {alpha, beta}.
  EXPECT_EQ(ada->values[*projects],
            Value(GlobalRefSet{{fix.gpa, fix.gpb}}));
}

TEST(MultiValued, UnionSetsMergesAcrossDatabases) {
  const ProjectsFixture fix;
  const MaterializedView view = materialize(
      *fix.federation, {"Prof"}, nullptr, MergePolicy::UnionSets);
  const MaterializedObject* ada = view.extent("Prof").find(fix.gprof);
  const auto projects =
      fix.federation->schema().cls("Prof").def().find_attribute("projects");
  // Union over isomers, deduplicated through the GOid space: beta appears
  // once even though both databases store it under different LOids.
  GlobalRefSet expected{{fix.gpa, fix.gpb, fix.gpc}};
  std::sort(expected.targets.begin(), expected.targets.end());
  EXPECT_EQ(ada->values[*projects], Value(expected));
}

TEST(MultiValued, UnionEnablesCrossDatabaseExistentialQueries) {
  const ProjectsFixture fix;
  GlobalQuery q;
  q.range_class = "Prof";
  q.select("name");
  q.where("projects.title", CompOp::Eq, "gamma");

  // Under first-non-null the merged set lacks gamma: Ada is eliminated.
  {
    const MaterializedView view = materialize(
        *fix.federation, classes_involved(fix.federation->schema(), q));
    const QueryResult result =
        evaluate_global(view, fix.federation->schema(), q);
    EXPECT_EQ(result.find(fix.gprof), nullptr);
  }
  // Under union merge DB2's gamma membership surfaces: Ada matches.
  {
    const MaterializedView view = materialize(
        *fix.federation, classes_involved(fix.federation->schema(), q),
        nullptr, MergePolicy::UnionSets);
    const QueryResult result =
        evaluate_global(view, fix.federation->schema(), q);
    const ResultRow* ada = result.find(fix.gprof);
    ASSERT_NE(ada, nullptr);
    EXPECT_EQ(ada->status, ResultStatus::Certain);
  }
}

TEST(MultiValued, ConsistencyCheckerComparesSetsByEntity) {
  const ProjectsFixture fix;
  // DB1 {alpha,beta} vs DB2 {gamma,beta}: different sets -> flagged. This
  // documents that union-merged federations are intentionally outside the
  // strict-consistency regime the strategy-equivalence guarantee needs.
  EXPECT_FALSE(fix.federation->check_consistency().empty());
}

}  // namespace
}  // namespace isomer
