// Class definitions, component schemas, objects, and path expressions.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/objmodel/object.hpp"
#include "isomer/objmodel/path.hpp"
#include "isomer/objmodel/schema.hpp"

namespace isomer {
namespace {

ClassDef teacher() {
  ClassDef cls("Teacher");
  cls.add_attribute("name", PrimType::String)
      .add_attribute("department", ComplexType{"Department"});
  return cls;
}

TEST(ClassDef, AttributesAreOrdered) {
  const ClassDef cls = teacher();
  EXPECT_EQ(cls.attribute_count(), 2u);
  EXPECT_EQ(cls.attribute(0).name, "name");
  EXPECT_EQ(cls.attribute(1).name, "department");
}

TEST(ClassDef, FindAttribute) {
  const ClassDef cls = teacher();
  EXPECT_EQ(cls.find_attribute("name"), 0u);
  EXPECT_EQ(cls.find_attribute("department"), 1u);
  EXPECT_EQ(cls.find_attribute("nope"), std::nullopt);
  EXPECT_TRUE(cls.has_attribute("name"));
  EXPECT_FALSE(cls.has_attribute("Name"));  // case-sensitive
}

TEST(ClassDef, DuplicateAttributeThrows) {
  ClassDef cls("C");
  cls.add_attribute("a", PrimType::Int);
  EXPECT_THROW(cls.add_attribute("a", PrimType::String), SchemaError);
}

TEST(ClassDef, IdentityAttribute) {
  ClassDef cls = teacher();
  cls.set_identity_attribute("name");
  EXPECT_EQ(cls.identity_attribute(), "name");
  EXPECT_THROW(cls.set_identity_attribute("nope"), SchemaError);
  EXPECT_THROW(cls.set_identity_attribute("department"), SchemaError)
      << "complex attributes cannot identify entities";
}

TEST(ClassDef, AttributeIndexOutOfRange) {
  EXPECT_THROW((void)teacher().attribute(2), ContractViolation);
}

TEST(AttrType, Compatibility) {
  EXPECT_TRUE(integration_compatible(AttrType{PrimType::Int},
                                     AttrType{PrimType::Int}));
  EXPECT_FALSE(integration_compatible(AttrType{PrimType::Int},
                                      AttrType{PrimType::String}));
  EXPECT_TRUE(integration_compatible(AttrType{ComplexType{"A"}},
                                     AttrType{ComplexType{"B"}}))
      << "complex domains unify through class correspondences, not names";
  EXPECT_FALSE(integration_compatible(AttrType{ComplexType{"A", true}},
                                      AttrType{ComplexType{"A", false}}))
      << "multiplicity must agree";
  EXPECT_FALSE(integration_compatible(AttrType{PrimType::Int},
                                      AttrType{ComplexType{"A"}}));
}

TEST(AttrType, Printing) {
  EXPECT_EQ(to_string(AttrType{PrimType::Real}), "real");
  EXPECT_EQ(to_string(AttrType{ComplexType{"Dept"}}), "Dept");
  EXPECT_EQ(to_string(AttrType{ComplexType{"Dept", true}}), "set<Dept>");
}

TEST(ComponentSchema, AddAndLookup) {
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class(teacher());
  EXPECT_TRUE(schema.has_class("Teacher"));
  EXPECT_EQ(schema.cls("Teacher").name(), "Teacher");
  EXPECT_EQ(schema.find_class("Nope"), nullptr);
  EXPECT_THROW((void)schema.cls("Nope"), SchemaError);
}

TEST(ComponentSchema, DuplicateClassThrows) {
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class(teacher());
  EXPECT_THROW(schema.add_class(teacher()), SchemaError);
}

TEST(ComponentSchema, ValidateCatchesDanglingDomain) {
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class(teacher());  // references Department, not defined
  EXPECT_THROW(schema.validate(), SchemaError);
  schema.add_class("Department").add_attribute("name", PrimType::String);
  EXPECT_NO_THROW(schema.validate());
}

TEST(Object, ValuesStartNull) {
  const ClassDef cls = teacher();
  const Object obj(LOid{DbId{1}, 1}, cls);
  EXPECT_EQ(obj.attribute_count(), 2u);
  EXPECT_TRUE(obj.value(0).is_null());
  EXPECT_TRUE(obj.value(1).is_null());
}

TEST(Object, SetAndGet) {
  const ClassDef cls = teacher();
  Object obj(LOid{DbId{1}, 1}, cls);
  obj.set_value(0, Value("Kelly"));
  EXPECT_EQ(obj.value(0), Value("Kelly"));
  EXPECT_THROW(obj.set_value(5, Value(1)), ContractViolation);
  EXPECT_THROW((void)obj.value(5), ContractViolation);
}

// --- path expressions ---

TEST(PathExpr, Parse) {
  const PathExpr path = PathExpr::parse("advisor.department.name");
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.step(0), "advisor");
  EXPECT_EQ(path.step(2), "name");
  EXPECT_TRUE(path.is_nested());
  EXPECT_EQ(path.dotted(), "advisor.department.name");
}

TEST(PathExpr, ParseSingleStep) {
  const PathExpr path = PathExpr::parse("name");
  EXPECT_EQ(path.length(), 1u);
  EXPECT_FALSE(path.is_nested());
}

TEST(PathExpr, ParseRejectsMalformed) {
  EXPECT_THROW((void)PathExpr::parse(""), QueryError);
  EXPECT_THROW((void)PathExpr::parse("a..b"), QueryError);
  EXPECT_THROW((void)PathExpr::parse(".a"), QueryError);
  EXPECT_THROW((void)PathExpr::parse("a."), QueryError);
}

TEST(PathExpr, PrefixSuffix) {
  const PathExpr path = PathExpr::parse("a.b.c");
  EXPECT_EQ(path.prefix(0).length(), 0u);
  EXPECT_EQ(path.prefix(2).dotted(), "a.b");
  EXPECT_EQ(path.suffix(1).dotted(), "b.c");
  EXPECT_EQ(path.suffix(3).length(), 0u);
  EXPECT_THROW((void)path.prefix(4), ContractViolation);
  EXPECT_THROW((void)path.suffix(4), ContractViolation);
}

class PathResolution : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = ComponentSchema(DbId{1}, "DB1");
    schema_.add_class("Student")
        .add_attribute("name", PrimType::String)
        .add_attribute("advisor", ComplexType{"Teacher"});
    schema_.add_class(teacher());
    schema_.add_class("Department").add_attribute("name", PrimType::String);
    lookup_ = [this](std::string_view name) {
      return schema_.find_class(name);
    };
  }
  ComponentSchema schema_;
  ClassLookup lookup_;
};

TEST_F(PathResolution, ResolvesNestedPath) {
  const ResolvedPath resolved = resolve_path(
      lookup_, "Student", PathExpr::parse("advisor.department.name"));
  ASSERT_EQ(resolved.steps.size(), 3u);
  EXPECT_EQ(resolved.steps[0].class_name, "Student");
  EXPECT_EQ(resolved.steps[1].class_name, "Teacher");
  EXPECT_EQ(resolved.steps[2].class_name, "Department");
  EXPECT_EQ(to_string(resolved.result_type()), "string");
  EXPECT_EQ(resolved.classes_on_path(),
            (std::vector<std::string>{"Student", "Teacher", "Department"}));
}

TEST_F(PathResolution, ClassesOnPathIncludesFinalComplexDomain) {
  const ResolvedPath resolved =
      resolve_path(lookup_, "Student", PathExpr::parse("advisor"));
  EXPECT_EQ(resolved.classes_on_path(),
            (std::vector<std::string>{"Student", "Teacher"}));
}

TEST_F(PathResolution, Errors) {
  EXPECT_THROW(
      (void)resolve_path(lookup_, "Nope", PathExpr::parse("name")),
      QueryError);
  EXPECT_THROW(
      (void)resolve_path(lookup_, "Student", PathExpr::parse("nope")),
      QueryError);
  EXPECT_THROW(
      (void)resolve_path(lookup_, "Student", PathExpr::parse("name.more")),
      QueryError)
      << "cannot continue past a primitive attribute";
}

}  // namespace
}  // namespace isomer
