// The obs/ observability layer: TraceSession span recording, the
// MetricsRegistry, the "isomer-trace-v1" JSONL encoding, and the
// per-phase EXPLAIN tree — plus the cardinal rule that tracing only
// *observes* an execution and never changes its metered work or its
// simulated cost figures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "isomer/core/explain.hpp"
#include "isomer/core/stream.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/obs/jsonl.hpp"
#include "isomer/obs/metrics.hpp"
#include "isomer/obs/trace_session.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

using obs::PhaseSpan;
using obs::TraceSession;

PhaseSpan make_span(std::string strategy, Phase phase, std::string site,
                    std::string step, SimTime start, SimTime end) {
  PhaseSpan span;
  span.strategy = std::move(strategy);
  span.phase = phase;
  span.site = std::move(site);
  span.step = std::move(step);
  span.start_ns = start;
  span.end_ns = end;
  return span;
}

TEST(TraceSession, RecordsAndSums) {
  TraceSession session;
  EXPECT_TRUE(session.empty());

  PhaseSpan a = make_span("BL", Phase::P, "DB1", "C1 evaluate", 0, 10);
  a.objects_in = 7;
  a.objects_out = 3;
  PhaseSpan b = make_span("BL", Phase::P, "DB2", "C1 evaluate", 0, 20);
  b.objects_in = 5;
  b.objects_out = 2;
  PhaseSpan c = make_span("BL", Phase::I, "global", "G2 certify", 20, 30);
  c.certs_resolved = 4;
  session.record(a);
  session.record(b);
  session.record(c);

  EXPECT_EQ(session.size(), 3u);
  EXPECT_EQ(session.sum_over(Phase::P,
                             [](const PhaseSpan& s) { return s.objects_in; }),
            12u);
  EXPECT_EQ(session.sum_over(Phase::I,
                             [](const PhaseSpan& s) {
                               return s.certs_resolved;
                             }),
            4u);
  EXPECT_EQ(session.spans()[0], a);  // defaulted == covers every field

  session.clear();
  EXPECT_TRUE(session.empty());
}

TEST(Metrics, CounterAndHistogram) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("events");
  counter.add();
  counter.add(9);
  EXPECT_EQ(counter.value(), 10u);
  // The same name resolves to the same instance (stable references).
  EXPECT_EQ(&registry.counter("events"), &counter);

  obs::Histogram& hist = registry.histogram("latency");
  hist.record(1.0);
  hist.record(3.0);
  hist.record(1000.0);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 1004.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1004.0 / 3.0);
  ASSERT_EQ(snap.buckets.size(), obs::Histogram::kBuckets);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t n : snap.buckets) bucketed += n;
  EXPECT_EQ(bucketed, 3u);
  EXPECT_EQ(snap.buckets[0], 1u);  // 1.0 lands in [2^0, 2^1)
  EXPECT_EQ(snap.buckets[1], 1u);  // 3.0 lands in [2^1, 2^2)
  EXPECT_EQ(snap.buckets[9], 1u);  // 1000.0 lands in [2^9, 2^10)

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.snapshot().count, 0u);
  // reset() keeps references valid, it never reallocates.
  EXPECT_EQ(&registry.counter("events"), &counter);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("events"), std::string::npos);
  EXPECT_NE(text.find("latency"), std::string::npos);
}

TEST(Metrics, QuantilesArePinnedOnKnownSamples) {
  // The estimator is nearest-rank located in its power-of-two bucket and
  // linearly interpolated, clamped to [min, max]. For {1, 2, 3, 4}:
  //   buckets: 1 -> [0,2), {2,3} -> [2,4), 4 -> [4,8)
  //   p50: rank 2 is the 1st of 2 samples in [2,4) -> 2 + (1/2)*2 = 3.0
  //   p95/p99: rank 4 fills [4,8) -> interpolates to 8, clamps to max 4.0
  obs::Histogram hist;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) hist.record(v);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.p50(), 3.0);
  EXPECT_DOUBLE_EQ(snap.p95(), 4.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.5);

  // A constant series clamps every quantile to the single recorded value,
  // whatever the bucket interpolation says.
  obs::Histogram constant;
  for (int i = 0; i < 5; ++i) constant.record(100.0);
  const obs::Histogram::Snapshot flat = constant.snapshot();
  EXPECT_DOUBLE_EQ(flat.p50(), 100.0);
  EXPECT_DOUBLE_EQ(flat.p95(), 100.0);
  EXPECT_DOUBLE_EQ(flat.p99(), 100.0);

  // Empty histograms report 0 rather than infinities.
  const obs::Histogram::Snapshot empty = obs::Histogram{}.snapshot();
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.p99(), 0.0);
}

TEST(Metrics, OverflowBucketInterpolatesTowardTheRecordedMax) {
  // The last bucket absorbs everything >= 2^47 and has no real upper edge.
  // Its interpolation must run toward the recorded max — the old fictional
  // 2^48 edge made every overflow quantile clamp down to the recorded min.
  obs::Histogram hist;
  const double low = std::ldexp(1.0, 50), high = std::ldexp(1.0, 52);
  hist.record(low);
  hist.record(high);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), high);  // q=1.0 pins to max
  EXPECT_DOUBLE_EQ(snap.p99(), high);
  // p50 (rank 1 of 2 in the open bucket) interpolates halfway from the
  // bucket floor 2^47 toward max, landing strictly between the samples.
  const double floor47 = std::ldexp(1.0, 47);
  EXPECT_DOUBLE_EQ(snap.p50(), floor47 + 0.5 * (high - floor47));
  EXPECT_GT(snap.p50(), snap.min);
  EXPECT_LT(snap.p50(), snap.max);

  // A single overflow sample: every quantile is that sample.
  obs::Histogram single;
  single.record(5e14);
  const obs::Histogram::Snapshot one = single.snapshot();
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(one.quantile(q), 5e14) << q;

  // All mass in the overflow bucket at one value: clamped to it exactly.
  obs::Histogram flat;
  for (int i = 0; i < 7; ++i) flat.record(floor47 * 3.0);
  const obs::Histogram::Snapshot all = flat.snapshot();
  EXPECT_DOUBLE_EQ(all.p50(), floor47 * 3.0);
  EXPECT_DOUBLE_EQ(all.quantile(1.0), floor47 * 3.0);
}

TEST(Metrics, QuantilesIgnoreRecordingOrder) {
  // The estimate depends only on bucket counts and min/max, so any
  // permutation of the same samples — e.g. concurrent recorders under
  // --jobs — yields bit-identical quantiles.
  const std::vector<double> samples{7.0, 0.5, 130.0, 33.0, 2.0, 2.0, 65.0};
  obs::Histogram forward, backward;
  for (const double v : samples) forward.record(v);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it)
    backward.record(*it);
  const obs::Histogram::Snapshot a = forward.snapshot();
  const obs::Histogram::Snapshot b = backward.snapshot();
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << q;
}

TEST(Jsonl, HistogramSummariesCarryQuantiles) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("serve.latency_us");
  for (const double v : {1.0, 2.0, 3.0, 4.0}) hist.record(v);
  (void)registry.histogram("untouched");
  const std::string line = obs::metrics_to_json(registry);
  for (const char* needle :
       {"\"serve.latency_us\":{\"count\":4", "\"min\":1", "\"max\":4",
        "\"p50\":3", "\"p95\":4", "\"p99\":4"})
    EXPECT_NE(line.find(needle), std::string::npos) << needle << "\n" << line;
  // Empty histograms must omit the summary fields (their min/max are
  // infinities, which JSON cannot carry).
  EXPECT_NE(line.find("\"untouched\":{\"count\":0,\"sum\":0}"),
            std::string::npos)
      << line;
}

TEST(Jsonl, EscapesStrings) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(Jsonl, SpanRecordCarriesEveryField) {
  PhaseSpan span = make_span("CA", Phase::Transfer, "DB1->global",
                             "CA_C2 ship", 5, 25);
  span.bytes = 128;
  span.messages = 1;
  span.work.comparisons = 3;
  const std::string line = obs::span_to_json(span);
  for (const char* needle :
       {"\"type\":\"span\"", "\"strategy\":\"CA\"", "\"query\":0",
        "\"phase\":\"transfer\"", "\"site\":\"DB1->global\"",
        "\"step\":\"CA_C2 ship\"", "\"start_ns\":5", "\"end_ns\":25",
        "\"meter\":{", "\"comparisons\":3", "\"bytes\":128",
        "\"messages\":1", "\"objects_in\":0", "\"certs_resolved\":0"})
    EXPECT_NE(line.find(needle), std::string::npos) << needle << "\n" << line;

  obs::SpanContext context;
  context.figure = "fig9";
  context.x_name = "N_o";
  context.x = 1000;
  context.trial = 7;
  const std::string tagged = obs::span_to_json(span, &context);
  for (const char* needle : {"\"figure\":\"fig9\"", "\"x_name\":\"N_o\"",
                             "\"x\":1000", "\"trial\":7"})
    EXPECT_NE(tagged.find(needle), std::string::npos) << needle << "\n"
                                                      << tagged;
}

TEST(Jsonl, HeaderAndMetricsRecords) {
  const std::string header =
      obs::trace_header_json("bench_fig9", 4, 15, 1.0, 1996);
  for (const char* needle :
       {"\"type\":\"header\"", "\"format\":\"isomer-trace-v1\"",
        "\"tool\":\"bench_fig9\"", "\"jobs\":4", "\"samples\":15",
        "\"seed\":1996"})
    EXPECT_NE(header.find(needle), std::string::npos) << needle << "\n"
                                                      << header;

  obs::MetricsRegistry registry;
  registry.counter("bench.trials").add(8);
  registry.histogram("bench.response_ms").record(2.0);
  const std::string metrics = obs::metrics_to_json(registry);
  for (const char* needle :
       {"\"type\":\"metrics\"", "\"bench.trials\":8",
        "\"bench.response_ms\":{\"count\":1"})
    EXPECT_NE(metrics.find(needle), std::string::npos) << needle << "\n"
                                                       << metrics;
}

// ---- Tracing against real executions (the paper's university example).

class ObsExecution : public ::testing::Test {
 protected:
  void SetUp() override {
    example_ = paper::make_university();
    query_ = paper::q1();
  }
  const Federation& fed() { return *example_.federation; }
  paper::UniversityExample example_;
  GlobalQuery query_;
};

TEST_F(ObsExecution, TracingNeverChangesTheExecution) {
  for (const StrategyKind kind : kAllStrategies) {
    StrategyOptions untraced;
    const StrategyReport baseline =
        execute_strategy(kind, fed(), query_, untraced);

    TraceSession session;
    StrategyOptions traced;
    traced.trace_session = &session;
    const StrategyReport probe = execute_strategy(kind, fed(), query_, traced);

    // Identical logical work, simulated cost, wire traffic and answer:
    // span recording observes the meters, it never charges them.
    EXPECT_EQ(probe.work, baseline.work) << to_string(kind);
    EXPECT_EQ(probe.total_ns, baseline.total_ns) << to_string(kind);
    EXPECT_EQ(probe.response_ns, baseline.response_ns) << to_string(kind);
    EXPECT_EQ(probe.bytes_transferred, baseline.bytes_transferred)
        << to_string(kind);
    EXPECT_EQ(probe.messages, baseline.messages) << to_string(kind);
    EXPECT_EQ(probe.result.rows.size(), baseline.result.rows.size())
        << to_string(kind);
    EXPECT_FALSE(session.empty()) << to_string(kind);
    for (const PhaseSpan& span : session.spans()) {
      EXPECT_EQ(span.strategy, to_string(kind));
      EXPECT_LE(span.start_ns, span.end_ns);
    }
  }
}

TEST_F(ObsExecution, SpanMetersSumToTheReportsWork) {
  TraceSession session;
  StrategyOptions options;
  options.trace_session = &session;
  const StrategyReport report =
      execute_strategy(StrategyKind::BL, fed(), query_, options);

  AccessMeter from_spans;
  Bytes bytes = 0;
  for (const PhaseSpan& span : session.spans()) {
    from_spans += span.work;
    bytes += span.bytes;
  }
  EXPECT_EQ(from_spans, report.work);
  EXPECT_EQ(bytes, report.bytes_transferred);
}

SimTime first_start(const TraceSession& session, Phase phase) {
  SimTime first = -1;
  for (const PhaseSpan& span : session.spans())
    if (span.phase == phase && (first < 0 || span.start_ns < first))
      first = span.start_ns;
  return first;
}

TEST_F(ObsExecution, PhaseOrderMatchesThePaper) {
  // CA is O -> I -> P; BL is P -> O -> I. The spans' simulated start times
  // must show exactly that reordering.
  TraceSession ca_session;
  StrategyOptions ca_options;
  ca_options.trace_session = &ca_session;
  (void)execute_strategy(StrategyKind::CA, fed(), query_, ca_options);
  const SimTime ca_o = first_start(ca_session, Phase::O);
  const SimTime ca_p = first_start(ca_session, Phase::P);
  ASSERT_GE(ca_o, 0);
  ASSERT_GE(ca_p, 0);
  EXPECT_LT(ca_o, ca_p) << "CA ships (O) before it evaluates (P)";

  TraceSession bl_session;
  StrategyOptions bl_options;
  bl_options.trace_session = &bl_session;
  (void)execute_strategy(StrategyKind::BL, fed(), query_, bl_options);
  const SimTime bl_p = first_start(bl_session, Phase::P);
  const SimTime bl_o = first_start(bl_session, Phase::O);
  const SimTime bl_i = first_start(bl_session, Phase::I);
  ASSERT_GE(bl_p, 0);
  ASSERT_GE(bl_o, 0);
  ASSERT_GE(bl_i, 0);
  EXPECT_LT(bl_p, bl_o) << "BL evaluates locally (P) before lookups (O)";
  EXPECT_LT(bl_o, bl_i) << "BL integrates (I) last";
}

TEST_F(ObsExecution, StreamSpansCarryTheirQueryIndex) {
  TraceSession session;
  StrategyOptions options;
  options.trace_session = &session;
  std::vector<StreamQuery> stream(2);
  stream[0] = {query_, 0, StrategyKind::BL};
  stream[1] = {query_, 1000, StrategyKind::CA};
  const StreamReport report = run_query_stream(fed(), stream, options);
  ASSERT_EQ(report.outcomes.size(), 2u);
  ASSERT_FALSE(session.empty());

  bool saw_q0_bl = false, saw_q1_ca = false;
  for (const PhaseSpan& span : session.spans()) {
    ASSERT_LT(span.query, 2u);
    if (span.query == 0) {
      EXPECT_EQ(span.strategy, "BL");
      saw_q0_bl = true;
    } else {
      EXPECT_EQ(span.strategy, "CA");
      saw_q1_ca = true;
    }
  }
  EXPECT_TRUE(saw_q0_bl);
  EXPECT_TRUE(saw_q1_ca);
}

TEST_F(ObsExecution, RenderPhaseTreeShowsPhasesAndCounts) {
  EXPECT_EQ(render_phase_tree(TraceSession{}), "(empty trace)\n");

  TraceSession session;
  StrategyOptions options;
  options.trace_session = &session;
  (void)execute_strategy(StrategyKind::BL, fed(), query_, options);
  const std::string tree = render_phase_tree(session);
  for (const char* needle :
       {"strategy BL", "phase P", "phase O", "phase I", "phase transfer",
        "objects ", "B/", "certified="})
    EXPECT_NE(tree.find(needle), std::string::npos) << needle << "\n" << tree;
  // BL's order is P -> O -> I: the tree lists the phases execution-first.
  EXPECT_LT(tree.find("phase P"), tree.find("phase O")) << tree;
  EXPECT_LT(tree.find("phase O"), tree.find("phase I")) << tree;
}

}  // namespace
}  // namespace isomer
