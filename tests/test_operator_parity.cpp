// Operator-pipeline parity — the refactor guard for the composable-operator
// executors (core/operators.hpp).
//
// PR 7 rebuilt the monolithic CA/BL/PL drivers as operator pipelines; this
// suite proves the rebuild is *bitwise invisible*: across a seed sweep of
// randomized Table-2 federations, every strategy × execution mode (plain,
// row-layout, batched, frame-capped, fault-injected, faulted+batched) must
// reproduce the exact StrategyReport the pre-refactor executors produced —
// response/total/cpu/disk/net times, wire bytes and messages, the full
// AccessMeter, fault-side figures, and the answer rows. The expected values
// live in tests/goldens/strategy_reports.golden, captured from the
// pre-refactor build; a single diverging nanosecond anywhere fails a line.
//
// Regenerating goldens (only after an *intentional* cost-model change, with
// the rationale recorded in the commit):
//   ISOMER_REGOLDEN=/path/to/strategy_reports.golden ./test_operator_parity
// writes the current build's digests instead of comparing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "isomer/core/cert_cache.hpp"
#include "isomer/fault/fault_plan.hpp"
#include "isomer/workload/synth.hpp"
#include "report_digest.hpp"

#ifndef ISOMER_GOLDEN_FILE
#define ISOMER_GOLDEN_FILE "strategy_reports.golden"
#endif

namespace isomer {
namespace {

constexpr std::uint64_t kSeeds = 30;

ParamConfig parity_config(std::size_t n_db) {
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {40, 80};  // scaled down; structure unchanged
  return config;
}

struct Mode {
  const char* name;
  bool columnar;
  bool batched;
  std::size_t batch_cap;
  bool faulted;
};

constexpr Mode kModes[] = {
    {"plain", true, false, 0, false},   {"row", false, false, 0, false},
    {"batch", true, true, 0, false},    {"batch3", true, true, 3, false},
    {"faults", true, false, 0, true},   {"faults+batch", true, true, 0, true},
};

/// Computes every case's digest line for one seed, in a fixed case order.
std::vector<std::string> digest_seed(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const SampleParams sample = draw_sample(parity_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);

  fault::FaultPlan plan;
  plan.drop_probability = 0.08;
  plan.spike_probability = 0.1;
  plan.seed = seed * 7919 + 13;

  std::vector<std::string> lines;
  for (const Mode& mode : kModes) {
    for (const StrategyKind kind : kAllStrategies) {
      StrategyOptions options;
      options.record_trace = false;
      options.columnar = mode.columnar;
      options.batch.enabled = mode.batched;
      options.batch.max_records = mode.batch_cap;
      if (mode.faulted) {
        options.faults = &plan;
        options.retry.max_retries = 5;
        options.degrade = fault::DegradeMode::Partial;
      }
      const StrategyReport report =
          execute_strategy(kind, *synth.federation, synth.query, options);
      std::ostringstream label;
      label << "seed=" << seed << " mode=" << mode.name
            << " kind=" << to_string(kind);
      lines.push_back(testing::report_digest_line(label.str(), report));
    }
  }
  return lines;
}

std::map<std::string, std::string> parse_golden(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open golden file " << path;
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // The label is the first three space-separated fields.
    std::size_t pos = 0;
    for (int field = 0; field < 3 && pos != std::string::npos; ++field)
      pos = line.find(' ', pos + 1);
    if (pos == std::string::npos) {
      ADD_FAILURE() << "malformed golden line: " << line;
      continue;
    }
    golden.emplace(line.substr(0, pos), line.substr(pos));
  }
  return golden;
}

/// ISOMER_REGOLDEN=path regenerates instead of comparing (see file header).
bool maybe_regolden() {
  const char* path = std::getenv("ISOMER_REGOLDEN");
  if (path == nullptr) return false;
  std::ofstream out(path);
  out << "# Pre-refactor StrategyReport digests (tests/report_digest.hpp "
         "format).\n"
      << "# One line per (seed, mode, strategy); regenerate per the recipe "
         "in test_operator_parity.cpp.\n";
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
    for (const std::string& line : digest_seed(seed)) out << line << "\n";
  return true;
}

class OperatorParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperatorParity, ReportsMatchPreRefactorGoldens) {
  static const bool regolden = maybe_regolden();
  if (regolden) GTEST_SKIP() << "goldens regenerated, comparison skipped";
  static const std::map<std::string, std::string> golden =
      parse_golden(ISOMER_GOLDEN_FILE);
  for (const std::string& line : digest_seed(GetParam())) {
    const std::size_t pos = [&] {
      std::size_t p = 0;
      for (int field = 0; field < 3; ++field) p = line.find(' ', p + 1);
      return p;
    }();
    const std::string label = line.substr(0, pos);
    const auto it = golden.find(label);
    ASSERT_NE(it, golden.end()) << "no golden for case: " << label;
    EXPECT_EQ(it->second, line.substr(pos))
        << "operator pipeline diverged from the pre-refactor executor at "
        << label;
  }
}

// 30 seeds x 6 modes x 5 strategies = 900 pinned executions.
INSTANTIATE_TEST_SUITE_P(Seeds, OperatorParity,
                         ::testing::Range<std::uint64_t>(1, kSeeds + 1));

TEST(OperatorParity, CertCacheOffAndColdAreBitwiseInvisible) {
  // The certificate cache (core/cert_cache.hpp) is strictly additive, and
  // deliberately not a golden Mode: StrategyOptions::cert_cache = nullptr
  // (the --certcache=off setting) must be the byte-for-byte pre-cache
  // executor, and even an attached-but-COLD cache is invisible — nothing is
  // written back until certification, so a first execution never finds a
  // hit and must not perturb a single simulated nanosecond. Only a WARM
  // cache may differ, and then only by stripping check traffic: identical
  // answer, no more wire.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const std::size_t n_db =
        2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const SampleParams sample = draw_sample(parity_config(n_db), rng);
    const SynthFederation synth = materialize_sample(sample);
    for (const StrategyKind kind : kAllStrategies) {
      StrategyOptions plain;
      plain.record_trace = false;
      const StrategyReport baseline =
          execute_strategy(kind, *synth.federation, synth.query, plain);
      const std::string expected =
          testing::report_digest_line("case", baseline);

      StrategyOptions off = plain;
      off.cert_cache = nullptr;  // explicit, not just defaulted
      const StrategyReport without =
          execute_strategy(kind, *synth.federation, synth.query, off);
      EXPECT_EQ(testing::report_digest_line("case", without), expected)
          << "seed=" << seed << " kind=" << to_string(kind);

      CertCache cache;
      StrategyOptions with = plain;
      with.cert_cache = &cache;
      const StrategyReport cold =
          execute_strategy(kind, *synth.federation, synth.query, with);
      EXPECT_EQ(testing::report_digest_line("case", cold), expected)
          << "cold cache perturbed seed=" << seed
          << " kind=" << to_string(kind);

      const StrategyReport warm =
          execute_strategy(kind, *synth.federation, synth.query, with);
      EXPECT_EQ(warm.result, baseline.result)
          << "warm cache changed the answer, seed=" << seed
          << " kind=" << to_string(kind);
      EXPECT_LE(warm.bytes_transferred, baseline.bytes_transferred)
          << "seed=" << seed << " kind=" << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace isomer
