// End-to-end reproduction of the paper's running example (Figures 1-8).
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/federation/materializer.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/schema/translate.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

class PaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    example_ = paper::make_university();
    query_ = paper::q1();
  }

  paper::UniversityExample example_;
  GlobalQuery query_;

  const Federation& fed() const { return *example_.federation; }
  GOid g(LOid id) const { return example_.entity(id); }
};

// --- Figure 2: the constructed global schema.

TEST_F(PaperExample, GlobalStudentHasUnionOfAttributes) {
  const GlobalClass& student = fed().schema().cls("Student");
  for (const char* attr :
       {"s-no", "name", "age", "advisor", "sex", "address"})
    EXPECT_TRUE(student.def().has_attribute(attr)) << attr;
  EXPECT_EQ(student.def().attribute_count(), 6u);
}

TEST_F(PaperExample, GlobalTeacherHasUnionOfAttributes) {
  const GlobalClass& teacher = fed().schema().cls("Teacher");
  for (const char* attr : {"name", "department", "speciality"})
    EXPECT_TRUE(teacher.def().has_attribute(attr)) << attr;
  EXPECT_EQ(teacher.def().attribute_count(), 3u);
}

TEST_F(PaperExample, MissingAttributesMatchPaper) {
  // DB1: Student misses address; Teacher misses speciality.
  const GlobalClass& student = fed().schema().cls("Student");
  const auto s1 = student.constituent_in(DbId{1});
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(student.missing_attributes(*s1),
            std::vector<std::string>{"address"});

  const GlobalClass& teacher = fed().schema().cls("Teacher");
  const auto t1 = teacher.constituent_in(DbId{1});
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(teacher.missing_attributes(*t1),
            std::vector<std::string>{"speciality"});

  // DB2: Student misses age; Teacher misses department.
  const auto s2 = student.constituent_in(DbId{2});
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(student.missing_attributes(*s2), std::vector<std::string>{"age"});
  const auto t2 = teacher.constituent_in(DbId{2});
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(teacher.missing_attributes(*t2),
            std::vector<std::string>{"department"});

  // DB3: Teacher misses speciality.
  const auto t3 = teacher.constituent_in(DbId{3});
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(teacher.missing_attributes(*t3),
            std::vector<std::string>{"speciality"});
}

TEST_F(PaperExample, FederationIsConsistent) {
  EXPECT_TRUE(fed().check_consistency().empty());
}

// --- Figure 3: Q1 and the derived local queries.

TEST_F(PaperExample, Q1RendersAsSqlX) {
  EXPECT_EQ(to_sqlx(query_),
            "Select X.name, X.advisor.name From Student X"
            " Where X.address.city=Taipei and X.advisor.speciality=database"
            " and X.advisor.department.name=CS");
}

TEST_F(PaperExample, LocalQueryForDb1MatchesQ1Prime) {
  // Q1': only advisor.department.name survives locally; address and
  // advisor.speciality are unsolved; X.advisor is projected as the unsolved
  // item path.
  const auto local = derive_local_query(fed().schema(), query_, DbId{1});
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->root_class, "Student");
  ASSERT_EQ(local->local_predicates.size(), 1u);
  EXPECT_EQ(local->local_predicates[0].path.dotted(),
            "advisor.department.name");
  ASSERT_EQ(local->unsolved_predicates.size(), 2u);
  EXPECT_EQ(local->unsolved_predicates[0].original.path.dotted(),
            "address.city");
  EXPECT_EQ(local->unsolved_predicates[0].remaining.dotted(), "address.city");
  EXPECT_EQ(local->unsolved_predicates[1].original.path.dotted(),
            "advisor.speciality");
  EXPECT_EQ(local->unsolved_predicates[1].item_prefix.dotted(), "advisor");
  EXPECT_EQ(local->unsolved_predicates[1].remaining.dotted(), "speciality");
  ASSERT_EQ(local->unsolved_item_paths.size(), 1u);
  EXPECT_EQ(local->unsolved_item_paths[0].dotted(), "advisor");
}

TEST_F(PaperExample, LocalQueryForDb2MatchesQ1DoublePrime) {
  // Q1'': address.city and advisor.speciality stay; advisor.department.name
  // is unsolved with item X.advisor.
  const auto local = derive_local_query(fed().schema(), query_, DbId{2});
  ASSERT_TRUE(local.has_value());
  ASSERT_EQ(local->local_predicates.size(), 2u);
  EXPECT_EQ(local->local_predicates[0].path.dotted(), "address.city");
  EXPECT_EQ(local->local_predicates[1].path.dotted(), "advisor.speciality");
  ASSERT_EQ(local->unsolved_predicates.size(), 1u);
  EXPECT_EQ(local->unsolved_predicates[0].remaining.dotted(),
            "department.name");
  ASSERT_EQ(local->unsolved_item_paths.size(), 1u);
  EXPECT_EQ(local->unsolved_item_paths[0].dotted(), "advisor");
}

TEST_F(PaperExample, Db3GetsNoLocalQuery) {
  // DB3 holds no Student constituent.
  EXPECT_FALSE(derive_local_query(fed().schema(), query_, DbId{3}).has_value());
  const auto homes = local_query_sites(fed().schema(), query_);
  EXPECT_EQ(homes, (std::vector<DbId>{DbId{1}, DbId{2}}));
}

// --- Figure 6: materialized global classes.

TEST_F(PaperExample, MaterializedStudentMatchesFigure6) {
  const auto view = materialize(fed(), {"Student", "Teacher", "Department",
                                        "Address"});
  const MaterializedExtent& students = view.extent("Student");
  EXPECT_EQ(students.size(), 5u);

  // gs1 (John): age 31 from DB1, address from DB2 — the outerjoin fills
  // missing data from isomeric objects (s2' gains age 31 from s1).
  const MaterializedObject* john = students.find(g(example_.ids.s1));
  ASSERT_NE(john, nullptr);
  const ClassDef& def = fed().schema().cls("Student").def();
  const auto value = [&](const MaterializedObject& obj, const char* attr) {
    return obj.values[*def.find_attribute(attr)];
  };
  EXPECT_EQ(value(*john, "name"), Value("John"));
  EXPECT_EQ(value(*john, "age"), Value(31));
  EXPECT_EQ(value(*john, "sex"), Value("male"));  // null in DB1, male in DB2
  EXPECT_EQ(value(*john, "address"),
            Value(GlobalRef{g(example_.ids.a2p)}));
  EXPECT_EQ(value(*john, "advisor"), Value(GlobalRef{g(example_.ids.t1)}));

  // gs2 (Tony): address stays null — no isomeric object provides it.
  const MaterializedObject* tony = students.find(g(example_.ids.s2));
  ASSERT_NE(tony, nullptr);
  EXPECT_TRUE(value(*tony, "address").is_null());

  // gt4 (Kelly): department from DB3, speciality from DB2.
  const MaterializedExtent& teachers = view.extent("Teacher");
  const MaterializedObject* kelly = teachers.find(g(example_.ids.t1p));
  ASSERT_NE(kelly, nullptr);
  const ClassDef& tdef = fed().schema().cls("Teacher").def();
  EXPECT_EQ(kelly->values[*tdef.find_attribute("speciality")],
            Value("database"));
  EXPECT_EQ(kelly->values[*tdef.find_attribute("department")],
            Value(GlobalRef{g(example_.ids.d1)}));
}

// --- Figure 7 / §2.2: the query answers.

void expect_paper_answer(const PaperExample* t, const QueryResult& result,
                         const paper::UniversityExample& example) {
  (void)t;
  ASSERT_EQ(result.rows.size(), 2u);
  const ResultRow* hedy = result.find(example.entity(example.ids.s1p));
  ASSERT_NE(hedy, nullptr);
  EXPECT_EQ(hedy->status, ResultStatus::Certain);
  ASSERT_EQ(hedy->targets.size(), 2u);
  EXPECT_EQ(hedy->targets[0], Value("Hedy"));
  EXPECT_EQ(hedy->targets[1], Value("Kelly"));

  const ResultRow* tony = result.find(example.entity(example.ids.s2));
  ASSERT_NE(tony, nullptr);
  EXPECT_EQ(tony->status, ResultStatus::Maybe);
  ASSERT_EQ(tony->targets.size(), 2u);
  EXPECT_EQ(tony->targets[0], Value("Tony"));
  EXPECT_EQ(tony->targets[1], Value("Haley"));
}

TEST_F(PaperExample, ReferenceAnswerIsHedyCertainTonyMaybe) {
  expect_paper_answer(this, reference_answer(fed(), query_), example_);
}

class PaperExampleStrategies
    : public PaperExample,
      public ::testing::WithParamInterface<StrategyKind> {};

TEST_P(PaperExampleStrategies, ProducesThePaperAnswer) {
  const StrategyReport report = execute_strategy(GetParam(), fed(), query_);
  expect_paper_answer(this, report.result, example_);
  EXPECT_GT(report.response_ns, 0);
  EXPECT_GE(report.total_ns, report.response_ns);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PaperExampleStrategies,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// --- Figure 8: executing flows (phase orders).

TEST_F(PaperExample, CaPhaseOrderIsOIP) {
  const StrategyReport report =
      execute_strategy(StrategyKind::CA, fed(), query_);
  EXPECT_EQ(report.trace.phase_order(),
            (std::vector<Phase>{Phase::O, Phase::I, Phase::P}));
}

TEST_F(PaperExample, BlPhaseOrderIsPOI) {
  const StrategyReport report =
      execute_strategy(StrategyKind::BL, fed(), query_);
  EXPECT_EQ(report.trace.phase_order(),
            (std::vector<Phase>{Phase::P, Phase::O, Phase::I}));
}

TEST_F(PaperExample, PlPhaseOrderIsOPI) {
  const StrategyReport report =
      execute_strategy(StrategyKind::PL, fed(), query_);
  EXPECT_EQ(report.trace.phase_order(),
            (std::vector<Phase>{Phase::O, Phase::P, Phase::I}));
}

// Note: on this 3-objects-per-extent illustration the centralized approach's
// single round trip actually finishes first — the localized advantage the
// paper measures (§4.2) needs realistically sized extents, and is asserted
// in test_paper_shapes.cpp over Table-2 workloads.

}  // namespace
}  // namespace isomer
