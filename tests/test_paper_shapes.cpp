// Qualitative shape checks of §4.2 over Table-2 workloads (scaled down):
// the localized approaches' response time beats the centralized approach's,
// and their total execution time is lower at the default database count.
// The full sweeps live in the bench/ harnesses; these tests pin the paper's
// headline orderings so a regression cannot slip through.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

struct Averages {
  double ca_resp = 0, bl_resp = 0, pl_resp = 0;
  double ca_total = 0, bl_total = 0, pl_total = 0;
};

Averages run_samples(const ParamConfig& config, std::uint64_t seed,
                     int samples) {
  Rng rng(seed);
  StrategyOptions options;
  options.record_trace = false;
  Averages avg;
  for (int i = 0; i < samples; ++i) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    const auto ca = execute_strategy(StrategyKind::CA, *synth.federation,
                                     synth.query, options);
    const auto bl = execute_strategy(StrategyKind::BL, *synth.federation,
                                     synth.query, options);
    const auto pl = execute_strategy(StrategyKind::PL, *synth.federation,
                                     synth.query, options);
    avg.ca_resp += to_milliseconds(ca.response_ns);
    avg.bl_resp += to_milliseconds(bl.response_ns);
    avg.pl_resp += to_milliseconds(pl.response_ns);
    avg.ca_total += to_milliseconds(ca.total_ns);
    avg.bl_total += to_milliseconds(bl.total_ns);
    avg.pl_total += to_milliseconds(pl.total_ns);
  }
  return avg;
}

TEST(PaperShapes, LocalizedBeatsCentralizedAtDefaultSetting) {
  ParamConfig config;              // Table-2 defaults
  config.n_objects = {300, 360};   // scaled 5000-6000 / ~16 for test speed
  const Averages avg = run_samples(config, 42, 12);

  // Fig. 9(b): localized response time is shorter than centralized.
  EXPECT_LT(avg.bl_resp, avg.ca_resp);
  EXPECT_LT(avg.pl_resp, avg.ca_resp);
  // Fig. 9(a): localized total execution time is shorter at N_db = 3.
  EXPECT_LT(avg.bl_total, avg.ca_total);
  EXPECT_LT(avg.pl_total, avg.ca_total);
  // BL never does more checking work than PL.
  EXPECT_LE(avg.bl_total, avg.pl_total);
}

TEST(PaperShapes, PlOverheadGrowsWithDatabases) {
  // Fig. 10(a): PL's total time grows faster than BL's as N_db increases —
  // eager checking touches assistants for objects local evaluation would
  // have eliminated, and more databases mean more isomers to check.
  ParamConfig small;
  small.n_db = 2;
  small.n_objects = {200, 240};
  ParamConfig large = small;
  large.n_db = 7;

  const Averages at2 = run_samples(small, 7, 10);
  const Averages at7 = run_samples(large, 7, 10);

  const double bl_growth = at7.bl_total / at2.bl_total;
  const double pl_growth = at7.pl_total / at2.pl_total;
  EXPECT_GT(pl_growth, bl_growth);
}

}  // namespace
}  // namespace isomer
