// The trial-level thread pool (common/parallel.hpp) and the per-stream seed
// derivation (common/rng.hpp) that together keep the Monte-Carlo drivers
// bitwise-deterministic at any --jobs value.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "isomer/common/parallel.hpp"
#include "isomer/common/rng.hpp"

namespace isomer {
namespace {

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(jobs);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.for_each(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<std::size_t> sum{0};
    pool.for_each(10, [&](std::size_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), 55u);
  }
}

TEST(ThreadPool, SingleJobRunsInIndexOrder) {
  // jobs == 1 must degenerate to a plain serial loop: strict index order,
  // usable with order-dependent state.
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.for_each(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, MapCollectsInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out =
      pool.map<std::size_t>(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, PropagatesFirstException) {
  for (const unsigned jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    EXPECT_THROW(pool.for_each(100,
                               [&](std::size_t i) {
                                 if (i == 17)
                                   throw std::runtime_error("trial failed");
                               }),
                 std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<std::size_t> sum{0};
    pool.for_each(8, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 28u);
  }
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.for_each(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForEach, ConvenienceWrapperCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_each(3, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(DeriveStream, Reproducible) {
  for (const std::uint64_t seed : {0ull, 1996ull, ~0ull}) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(derive_stream(seed, i), derive_stream(seed, i));
      Rng a(derive_stream(seed, i));
      Rng b(derive_stream(seed, i));
      for (int draw = 0; draw < 32; ++draw) EXPECT_EQ(a(), b());
    }
  }
}

TEST(DeriveStream, AdjacentStreamsDoNotOverlap) {
  // Streams of adjacent trial indices must land in unrelated regions of the
  // generator's sequence: no value of one stream's prefix appears in its
  // neighbour's prefix (a lagged copy would break trial independence).
  constexpr int kPrefix = 256;
  for (const std::uint64_t seed : {1ull, 1996ull, 0x9e3779b9ull}) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      ASSERT_NE(derive_stream(seed, i), derive_stream(seed, i + 1));
      Rng a(derive_stream(seed, i));
      Rng b(derive_stream(seed, i + 1));
      std::set<std::uint64_t> seen;
      for (int draw = 0; draw < kPrefix; ++draw) seen.insert(a());
      for (int draw = 0; draw < kPrefix; ++draw)
        EXPECT_EQ(seen.count(b()), 0u);
    }
  }
}

TEST(DeriveStream, DistinctSeedsGiveDistinctStreams) {
  EXPECT_NE(derive_stream(1, 0), derive_stream(2, 0));
  EXPECT_NE(derive_stream(1, 5), derive_stream(2, 5));
}

}  // namespace
}  // namespace isomer
