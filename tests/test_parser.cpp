// The SQL/X-subset parser.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/query/parser.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

TEST(Parser, ParsesQ1Verbatim) {
  // Fig. 3(a), exactly as printed in the paper.
  const GlobalQuery q = parse_sqlx(
      "Select X.name, X.advisor.name From Student X "
      "Where X.address.city=Taipei and X.advisor.speciality=database "
      "and X.advisor.department.name=CS");
  EXPECT_EQ(q.range_class, "Student");
  ASSERT_EQ(q.targets.size(), 2u);
  EXPECT_EQ(q.targets[0].dotted(), "name");
  EXPECT_EQ(q.targets[1].dotted(), "advisor.name");
  ASSERT_EQ(q.predicates.size(), 3u);
  EXPECT_EQ(q.predicates[0].path.dotted(), "address.city");
  EXPECT_EQ(q.predicates[0].op, CompOp::Eq);
  EXPECT_EQ(q.predicates[0].literal, Value("Taipei"));
  EXPECT_TRUE(q.disjuncts.empty());
}

TEST(Parser, ParsedQ1AnswersLikeTheBuiltQ1) {
  const paper::UniversityExample example = paper::make_university();
  const GlobalQuery parsed = parse_sqlx(to_sqlx(paper::q1()));
  EXPECT_EQ(reference_answer(*example.federation, parsed),
            reference_answer(*example.federation, paper::q1()));
}

TEST(Parser, RoundTripsThroughThePrinter) {
  for (const char* text : {
           "Select X.name From Student X",
           "Select X.name From Student X Where X.age>=30",
           "Select X.name, X.advisor.name From Student X Where "
           "X.address.city=Taipei and X.advisor.speciality=database",
       }) {
    const GlobalQuery q = parse_sqlx(text);
    EXPECT_EQ(parse_sqlx(to_sqlx(q)).predicates, q.predicates);
  }
}

TEST(Parser, Literals) {
  const GlobalQuery q = parse_sqlx(
      "Select X.a From C X Where X.i=42 and X.r<3.25 and X.s='two words' "
      "and X.q=\"dquoted\" and X.b=true and X.neg>-7");
  ASSERT_EQ(q.predicates.size(), 6u);
  EXPECT_EQ(q.predicates[0].literal, Value(42));
  EXPECT_EQ(q.predicates[1].literal, Value(3.25));
  EXPECT_EQ(q.predicates[2].literal, Value("two words"));
  EXPECT_EQ(q.predicates[3].literal, Value("dquoted"));
  EXPECT_EQ(q.predicates[4].literal, Value(true));
  EXPECT_EQ(q.predicates[5].literal, Value(-7));
}

TEST(Parser, Operators) {
  const GlobalQuery q = parse_sqlx(
      "Select * From C X Where X.a=1 and X.b<>1 and X.c!=1 and X.d<1 and "
      "X.e<=1 and X.f>1 and X.g>=1");
  ASSERT_EQ(q.predicates.size(), 7u);
  EXPECT_EQ(q.predicates[0].op, CompOp::Eq);
  EXPECT_EQ(q.predicates[1].op, CompOp::Ne);
  EXPECT_EQ(q.predicates[2].op, CompOp::Ne);
  EXPECT_EQ(q.predicates[3].op, CompOp::Lt);
  EXPECT_EQ(q.predicates[4].op, CompOp::Le);
  EXPECT_EQ(q.predicates[5].op, CompOp::Gt);
  EXPECT_EQ(q.predicates[6].op, CompOp::Ge);
  EXPECT_TRUE(q.targets.empty()) << "Select * projects nothing extra";
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  const GlobalQuery q =
      parse_sqlx("SELECT x.name FROM Student x WHERE x.age > 21 AND "
                 "x.sex = female");
  EXPECT_EQ(q.predicates.size(), 2u);
}

TEST(Parser, TopLevelOrBecomesGroups) {
  const GlobalQuery q = parse_sqlx(
      "Select X.name From Student X Where X.age<20 or X.age>60");
  ASSERT_EQ(q.disjuncts.size(), 2u);
  EXPECT_EQ(q.disjuncts[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(q.disjuncts[1], (std::vector<std::size_t>{1}));
}

TEST(Parser, AndWithParenthesizedOr) {
  const GlobalQuery q = parse_sqlx(
      "Select X.name From Student X Where X.age>=18 and "
      "(X.sex=male or X.sex=female)");
  ASSERT_EQ(q.predicates.size(), 3u);
  ASSERT_EQ(q.disjuncts.size(), 2u);
  EXPECT_EQ(q.disjuncts[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(q.disjuncts[1], (std::vector<std::size_t>{2}));
  // age>=18 stays a plain conjunct:
  EXPECT_EQ(q.combine({Truth::True, Truth::False, Truth::True}), Truth::True);
  EXPECT_EQ(q.combine({Truth::False, Truth::True, Truth::True}),
            Truth::False);
}

TEST(Parser, OrOfConjunctions) {
  const GlobalQuery q = parse_sqlx(
      "Select * From C X Where (X.a=1 and X.b=2) or X.c=3");
  ASSERT_EQ(q.disjuncts.size(), 2u);
  EXPECT_EQ(q.disjuncts[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(q.disjuncts[1], (std::vector<std::size_t>{2}));
}

TEST(Parser, RejectsUnsupportedShapes) {
  // Two OR groups under one AND exceed the engine's formula shape.
  EXPECT_THROW(
      (void)parse_sqlx("Select * From C X Where (X.a=1 or X.b=2) and "
                       "(X.c=3 or X.d=4)"),
      ParseError);
  // OR nested inside an alternative of another OR.
  EXPECT_THROW(
      (void)parse_sqlx("Select * From C X Where X.a=1 or "
                       "(X.b=2 and (X.c=3 or X.d=4))"),
      ParseError);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW((void)parse_sqlx(""), ParseError);
  EXPECT_THROW((void)parse_sqlx("Select From C X"), ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C"), ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where"), ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where X.a="), ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where X.a 1"),
               ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where X.a=1 garbage"),
               ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where X.a='oops"),
               ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where Y.a=1"),
               ParseError)
      << "undeclared range variable";
  EXPECT_THROW((void)parse_sqlx("Select Y.a From C X"), ParseError)
      << "target variable must match the range variable";
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where X.a=1 and"),
               ParseError);
  EXPECT_THROW((void)parse_sqlx("Select X.a From C X Where (X.a=1"),
               ParseError);
}

TEST(Parser, ErrorsCarryPosition) {
  try {
    (void)parse_sqlx("Select X.a From C X Where X.a @ 1");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("offset 30"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace isomer
