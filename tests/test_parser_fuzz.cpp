// Fuzzing for the four text frontends: the SQL/X-subset query parser
// (query/parser.hpp), the --faults specification parser
// (fault/fault_plan.hpp), the --serve specification parser
// (serve/serve_spec.hpp), and the --impute specification parser
// (analytic/impute.hpp).
//
// Three properties, each over hundreds of deterministic random inputs:
//   * printer -> parser round-trip: any AST the generator can build prints
//     to text that parses back to the identical AST;
//   * mutation robustness: randomly corrupted versions of valid inputs
//     either parse or raise the documented error type — never crash, never
//     leak a foreign exception;
//   * garbage robustness: arbitrary printable strings do the same.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isomer/analytic/impute.hpp"
#include "isomer/common/error.hpp"
#include "isomer/common/rng.hpp"
#include "isomer/fault/fault_plan.hpp"
#include "isomer/query/parser.hpp"
#include "isomer/query/printer.hpp"
#include "isomer/serve/serve_spec.hpp"

namespace isomer {
namespace {

// Safe barewords: parse as plain identifiers/strings, never as keywords.
const char* const kClasses[] = {"Student", "Course", "Dept", "Person",
                                "Project"};
const char* const kSteps[] = {"name", "age", "city", "advisor", "dept",
                              "speciality", "address", "code", "grade"};
const char* const kStrings[] = {"Taipei", "database", "CS", "alpha", "Chen"};

PathExpr random_path(Rng& rng) {
  std::vector<std::string> steps;
  const std::size_t len = 1 + rng.index(3);
  for (std::size_t i = 0; i < len; ++i)
    steps.push_back(kSteps[rng.index(std::size(kSteps))]);
  return PathExpr(std::move(steps));
}

Value random_literal(Rng& rng) {
  switch (rng.index(4)) {
    case 0:
      return Value(rng.uniform_int(-100, 100));
    case 1:
      // Whole doubles print as integers and quarters print exactly, so stay
      // off .0 to keep the round-trip lossless *and* type-preserving.
      return Value(static_cast<double>(rng.uniform_int(0, 99)) +
                   (rng.bernoulli(0.5) ? 0.25 : 0.5));
    case 2:
      return Value(kStrings[rng.index(std::size(kStrings))]);
    default:
      return Value(rng.bernoulli(0.5));
  }
}

CompOp random_op(Rng& rng) {
  constexpr CompOp kOps[] = {CompOp::Eq, CompOp::Ne, CompOp::Lt,
                             CompOp::Le, CompOp::Gt, CompOp::Ge};
  return kOps[rng.index(std::size(kOps))];
}

/// Builds a random query within the printable grammar: >= 1 target, 0-3
/// plain conjuncts, optionally one top-level OR of 2-3 conjunction groups.
/// Plain conjuncts are emitted first, matching the printer's predicate
/// order, so parsed predicate indices line up with the generated ones.
GlobalQuery random_query(Rng& rng) {
  GlobalQuery query;
  query.range_class = kClasses[rng.index(std::size(kClasses))];
  const std::size_t n_targets = 1 + rng.index(3);
  for (std::size_t i = 0; i < n_targets; ++i)
    query.targets.push_back(random_path(rng));

  const std::size_t n_plain = rng.index(4);
  for (std::size_t i = 0; i < n_plain; ++i)
    query.predicates.push_back(
        Predicate{random_path(rng), random_op(rng), random_literal(rng)});

  if (rng.bernoulli(0.5)) {
    const std::size_t n_groups = 2 + rng.index(2);
    for (std::size_t g = 0; g < n_groups; ++g) {
      std::vector<std::size_t> group;
      const std::size_t n_members = 1 + rng.index(2);
      for (std::size_t m = 0; m < n_members; ++m) {
        group.push_back(query.predicates.size());
        query.predicates.push_back(
            Predicate{random_path(rng), random_op(rng), random_literal(rng)});
      }
      query.disjuncts.push_back(std::move(group));
    }
  }
  return query;
}

class ParserRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRoundTrip, PrintedQueriesParseBackIdentically) {
  Rng rng(derive_stream(0x5014ULL, GetParam()));
  const GlobalQuery query = random_query(rng);
  const std::string text = to_sqlx(query);
  GlobalQuery parsed;
  ASSERT_NO_THROW(parsed = parse_sqlx(text)) << text;
  EXPECT_EQ(parsed.range_class, query.range_class) << text;
  EXPECT_EQ(parsed.targets, query.targets) << text;
  EXPECT_EQ(parsed.predicates, query.predicates) << text;
  EXPECT_EQ(parsed.disjuncts, query.disjuncts) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 301));

/// One random in-place corruption of `text`.
std::string mutate(std::string text, Rng& rng) {
  const char kPool[] = " .,()<>=!'\"*@xX7-";
  const auto pool_char = [&] {
    return kPool[rng.index(sizeof(kPool) - 1)];
  };
  if (text.empty()) return std::string(1, pool_char());
  const std::size_t at = rng.index(text.size());
  switch (rng.index(5)) {
    case 0:  // delete
      text.erase(at, 1);
      break;
    case 1:  // insert
      text.insert(at, 1, pool_char());
      break;
    case 2:  // replace
      text[at] = pool_char();
      break;
    case 3:  // truncate
      text.resize(at);
      break;
    default:  // duplicate a slice
      text.insert(at, text.substr(at, 1 + rng.index(8)));
      break;
  }
  return text;
}

class ParserMutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserMutation, CorruptedQueriesFailCleanlyOrParse) {
  Rng rng(derive_stream(0xF022ULL, GetParam()));
  std::string text = to_sqlx(random_query(rng));
  const std::size_t rounds = 1 + rng.index(4);
  for (std::size_t i = 0; i < rounds; ++i) text = mutate(std::move(text), rng);
  try {
    (void)parse_sqlx(text);  // parsing successfully is fine too
  } catch (const QueryError&) {
    // ParseError (or its QueryError base, e.g. from PathExpr validation) is
    // the documented failure mode.
  }
  // Anything else — std::bad_alloc, ContractViolation, a crash — escapes
  // and fails the test.
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutation,
                         ::testing::Range<std::uint64_t>(1, 301));

TEST(ParserGarbage, ArbitraryPrintableStringsNeverCrashTheParser) {
  Rng rng(0xB4D'1112ULL);
  const char kPool[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFXW .,()<>=!'\"*@0123456789-_";
  for (int i = 0; i < 500; ++i) {
    std::string text;
    const std::size_t len = rng.index(60);
    for (std::size_t c = 0; c < len; ++c)
      text += kPool[rng.index(sizeof(kPool) - 1)];
    try {
      (void)parse_sqlx(text);
    } catch (const QueryError&) {
    }
  }
}

TEST(FaultSpecDuplicates, RepeatedScalarKeysAreHardErrors) {
  // Last-one-wins on a repeated key silently discards half the operator's
  // intent (e.g. "drop=0.3,drop=0.05" benchmarking far gentler faults than
  // requested); every scalar key may appear at most once.
  const char* const duplicated[] = {
      "drop=0.1,drop=0.2",
      "spike=0.1:1ms,spike=0.2:2ms",
      "seed=1,down=2,seed=3",
      "retries=4,retries=4",
      "timeout=1ms,drop=0.1,timeout=2ms",
      "backoff=500us,backoff=500us",
      "degrade=partial,degrade=full",
  };
  for (const char* spec : duplicated)
    EXPECT_THROW((void)fault::parse_fault_spec(spec), FaultError) << spec;
}

TEST(FaultSpecDuplicates, DownIsRepeatable) {
  // 'down' is additive, not scalar: each occurrence contributes another
  // outage window, so repeating it must keep parsing.
  const fault::FaultSpec spec =
      fault::parse_fault_spec("down=2,down=3@5ms..20ms,down=2");
  EXPECT_EQ(spec.plan.outages.size(), 3u);
}

TEST(FaultSpecMutation, CorruptedSpecsFailCleanlyOrParse) {
  const std::string valid =
      "drop=0.05,spike=0.1:1ms,down=2,down=3@5ms..20ms,seed=9,retries=4,"
      "timeout=3ms,backoff=500us,degrade=partial";
  Rng rng(0xFA17'F022ULL);
  for (int i = 0; i < 500; ++i) {
    std::string text = valid;
    const std::size_t rounds = 1 + rng.index(4);
    for (std::size_t r = 0; r < rounds; ++r)
      text = mutate(std::move(text), rng);
    try {
      (void)fault::parse_fault_spec(text);
    } catch (const FaultError&) {
      // the documented failure mode for malformed specs
    }
  }
}

// ---- serve spec (serve/serve_spec.hpp) ----

/// A random but valid ServeSpec. Fields the spec grammar ties to the other
/// arrival mode are left at their defaults — the parser would reject them,
/// and to_string never prints them — so round-trip equality is exact.
serve::ServeSpec random_serve_spec(Rng& rng) {
  serve::ServeSpec spec;
  if (rng.bernoulli(0.5)) {
    spec.mode = serve::ArrivalMode::Open;
    spec.rate_qps = rng.uniform_real(0.001, 5000.0);
  } else {
    spec.mode = serve::ArrivalMode::Closed;
    spec.clients = 1 + rng.index(64);
    spec.think_ns = static_cast<SimTime>(rng.uniform_int(0, 5'000'000));
  }
  spec.n_queries = 1 + rng.index(10'000);
  constexpr serve::SchedPolicy kPolicies[] = {
      serve::SchedPolicy::Fifo, serve::SchedPolicy::Spc,
      serve::SchedPolicy::Wfq, serve::SchedPolicy::Edf};
  spec.policy = kPolicies[rng.index(std::size(kPolicies))];
  spec.queue_limit = rng.index(256);     // 0 = unbounded
  spec.site_inflight = rng.index(32);    // 0 = uncapped
  // Autoscale requires a finite cap, and to_string only prints it when on.
  if (spec.site_inflight > 0 && rng.bernoulli(0.3)) spec.autoscale = true;
  spec.seed = rng.uniform_int(0, 1 << 20);

  // 0-3 tenant clauses with unique generated ids. Optional fields are left
  // at their non-printed defaults half the time, and a tenant rate only
  // exists under open-loop arrivals (the parser rejects it elsewhere).
  const char* const kTenantIds[] = {"gold", "free", "batch-9", "T_2"};
  const std::size_t n_tenants = rng.index(4);
  for (std::size_t t = 0; t < n_tenants; ++t) {
    serve::TenantSpec tenant;
    tenant.id = kTenantIds[t];
    tenant.weight = 0.25 + static_cast<double>(rng.uniform_int(0, 31)) * 0.25;
    tenant.quota = rng.index(128);  // 0 = unlimited
    if (rng.bernoulli(0.5))
      tenant.slo_ns = static_cast<SimTime>(rng.uniform_int(1, 5'000'000'000));
    if (spec.mode == serve::ArrivalMode::Open && rng.bernoulli(0.5))
      tenant.rate_qps = 0.5 + static_cast<double>(rng.uniform_int(0, 99));
    spec.tenants.push_back(std::move(tenant));
  }
  return spec;
}

class ServeSpecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServeSpecRoundTrip, PrintedSpecsParseBackIdentically) {
  Rng rng(derive_stream(0x5E27'E014ULL, GetParam()));
  const serve::ServeSpec spec = random_serve_spec(rng);
  const std::string text = serve::to_string(spec);
  serve::ServeSpec parsed;
  ASSERT_NO_THROW(parsed = serve::parse_serve_spec(text)) << text;
  EXPECT_EQ(parsed, spec) << text;
  // The canonical form is a fixed point: printing the parse reproduces it.
  EXPECT_EQ(serve::to_string(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeSpecRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 301));

TEST(ServeSpecErrors, DuplicateKeysAreHardErrors) {
  // Same policy as --faults: last-one-wins would silently discard half the
  // operator's intent, so every key may appear at most once.
  const char* const duplicated[] = {
      "open:rate=1,rate=2",
      "open:n=5,queue=2,n=6",
      "closed:clients=2,clients=3",
      "closed:think=1ms,think=2ms",
      "open:policy=fifo,policy=spc",
      "open:inflight=2,inflight=2",
      "open:seed=1,seed=1",
      "open:queue=4,rate=9,queue=4",
      "open:autoscale=on,inflight=2,autoscale=on",
      "open:rate=1/tenant:a,weight=2,weight=3",
      "open:rate=1/tenant:a,quota=4,slo=1ms,quota=4",
      "open:rate=1/tenant:a,rate=2,rate=2",
  };
  for (const char* spec : duplicated)
    EXPECT_THROW((void)serve::parse_serve_spec(spec), ServeError) << spec;
}

TEST(ServeSpecErrors, DuplicateTenantIdsAreHardErrors) {
  // Two clauses for one traffic class would silently merge or shadow its
  // quota/weight/SLO; the spec names each tenant exactly once.
  const char* const duplicated[] = {
      "open:rate=1/tenant:a/tenant:a",
      "open:rate=1/tenant:gold,weight=3/tenant:free/tenant:gold,quota=4",
      "closed:clients=2/tenant:t/tenant:t,weight=2",
  };
  for (const char* spec : duplicated)
    EXPECT_THROW((void)serve::parse_serve_spec(spec), ServeError) << spec;
}

TEST(ServeSpecErrors, MalformedTenantClausesAreHardErrors) {
  const char* const malformed[] = {
      "open:rate=1/",                      // empty tenant clause
      "open:rate=1/gold",                  // missing 'tenant:' prefix
      "open:rate=1/tenant:",               // empty tenant id
      "open:rate=1/tenant:bad id",         // space outside the id alphabet
      "open:rate=1/tenant:a,weight=0",     // weight must be positive
      "open:rate=1/tenant:a,weight=-1",    // parse_real rejects negatives
      "open:rate=1/tenant:a,weight=inf",   // non-finite weight
      "open:rate=1/tenant:a,weight=nan",
      "open:rate=1/tenant:a,rate=0",       // tenant rate must be positive
      "open:rate=1/tenant:a,rate=inf",
      "closed:clients=2/tenant:a,rate=5",  // rate is open-loop only
      "open:rate=1/tenant:a,slo=0ms",      // a zero SLO can never be met
      "open:rate=1/tenant:a,slo=5",        // duration needs a unit
      "open:rate=1/tenant:a,bogus=1",      // unknown tenant key
      "open:rate=1/tenant:a,weight",       // missing '='
      "open:rate=inf",                     // non-finite main-clause rate
      "open:rate=nan",
      "open:rate=1,autoscale=bogus",       // autoscale wants on|off
      "open:rate=1,autoscale=on,inflight=0",  // autoscale needs a finite cap
  };
  for (const char* spec : malformed)
    EXPECT_THROW((void)serve::parse_serve_spec(spec), ServeError) << spec;
}

TEST(ServeSpecErrors, KeysOfTheOtherModeAreHardErrors) {
  // rate= describes an open-loop arrival process; clients=/think= describe a
  // closed loop. Accepting one under the other mode would silently ignore
  // it, so the parser rejects the combination outright.
  const char* const mismatched[] = {
      "closed:rate=5",
      "open:clients=2",
      "open:think=1ms",
      "closed:clients=2,rate=0.5",
  };
  for (const char* spec : mismatched)
    EXPECT_THROW((void)serve::parse_serve_spec(spec), ServeError) << spec;
}

TEST(ServeSpecErrors, MalformedSpecsAreHardErrors) {
  const char* const malformed[] = {
      "",             // missing mode
      "open:",        // empty item list
      "poisson",      // unknown mode
      "open:rate=0",  // rate must be positive
      "open:rate=-3",
      "closed:clients=0",  // needs at least one client
      "open:n=0",          // needs at least one submission
      "open:bogus=1",      // unknown key
      "open:rate",         // missing '='
      "closed:think=5",    // duration needs a unit
      "closed:think=5m",   // unknown unit
      "open:policy=lifo",  // unknown policy
  };
  for (const char* spec : malformed)
    EXPECT_THROW((void)serve::parse_serve_spec(spec), ServeError) << spec;
}

TEST(ServeSpecMutation, CorruptedSpecsFailCleanlyOrParse) {
  const std::string corpus[] = {
      "open:rate=120.5,n=64,policy=spc,queue=16,inflight=2,seed=9",
      "closed:clients=8,think=2ms,n=100,policy=fifo,queue=32,inflight=4",
      "open:rate=40,n=64,policy=edf,inflight=2,autoscale=on"
      "/tenant:gold,weight=3,quota=8,slo=250ms,rate=30"
      "/tenant:free,weight=1,quota=4",
      "closed:clients=6,think=0ns,policy=wfq"
      "/tenant:a,weight=2/tenant:b-2,slo=1s",
  };
  Rng rng(0x5E27'F022ULL);
  for (int i = 0; i < 1000; ++i) {
    std::string text = corpus[rng.index(std::size(corpus))];
    const std::size_t rounds = 1 + rng.index(4);
    for (std::size_t r = 0; r < rounds; ++r)
      text = mutate(std::move(text), rng);
    try {
      (void)serve::parse_serve_spec(text);
    } catch (const ServeError&) {
      // the documented failure mode for malformed specs
    }
  }
}

// ---- impute spec (analytic/impute.hpp) ----

/// A random but valid ImputeSpec. Any double in [0, 1] survives the
/// %.17g print exactly, so the threshold is drawn from the full range.
ImputeSpec random_impute_spec(Rng& rng) {
  if (rng.bernoulli(0.2)) return ImputeSpec{};  // canonical "off"
  ImputeSpec spec;
  spec.enabled = true;
  spec.threshold = rng.bernoulli(0.1) ? static_cast<double>(rng.index(2))
                                      : rng.uniform_real(0.0, 1.0);
  spec.mechanism =
      rng.bernoulli(0.5) ? ImputeMechanism::MCAR : ImputeMechanism::MAR;
  return spec;
}

class ImputeSpecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImputeSpecRoundTrip, PrintedSpecsParseBackIdentically) {
  Rng rng(derive_stream(0x1217'E014ULL, GetParam()));
  const ImputeSpec spec = random_impute_spec(rng);
  const std::string text = to_string(spec);
  ImputeSpec parsed;
  ASSERT_NO_THROW(parsed = parse_impute_spec(text)) << text;
  EXPECT_EQ(parsed, spec) << text;
  // The canonical form is a fixed point: printing the parse reproduces it.
  EXPECT_EQ(to_string(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImputeSpecRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 301));

TEST(ImputeSpecErrors, MalformedSpecsAreHardErrors) {
  const char* const malformed[] = {
      "",                    // empty specification
      "on",                  // unknown bareword ('off' is the only one)
      "thresh",              // missing '='
      "thresh=",             // missing value
      "thresh=1.5",          // above 1
      "thresh=-0.1",         // below 0
      "thresh=nan",          // NaN compares false with everything
      "thresh=inf",
      "thresh=0.5abc",       // trailing junk after the real
      "thresh=0.5,",         // trailing empty item
      ",thresh=0.5",         // leading empty item
      "mech=mcar",           // thresh is required
      "thresh=0.5,mech=bogus",  // unknown mechanism
      "thresh=0.5,mech=",       // empty mechanism
      "thresh=0.5,bogus=1",     // unknown key
      "off,thresh=0.5",         // 'off' must stand alone
      "thresh=0.5,off",
  };
  for (const char* spec : malformed)
    EXPECT_THROW((void)parse_impute_spec(spec), ImputeError) << spec;
}

TEST(ImputeSpecErrors, DuplicateKeysAreHardErrors) {
  // Same policy as --faults and --serve: last-one-wins would silently
  // discard half the operator's intent, so every key appears at most once.
  const char* const duplicated[] = {
      "thresh=0.5,thresh=0.5",
      "thresh=0.4,mech=mcar,mech=mar",
      "thresh=0.1,mech=mar,thresh=0.9",
  };
  for (const char* spec : duplicated)
    EXPECT_THROW((void)parse_impute_spec(spec), ImputeError) << spec;
}

TEST(ImputeSpecMutation, CorruptedSpecsFailCleanlyOrParse) {
  const std::string corpus[] = {
      "off",
      "thresh=0.5",
      "thresh=0.75,mech=mar",
      "thresh=1,mech=mcar",
  };
  Rng rng(0x1217'F022ULL);
  for (int i = 0; i < 500; ++i) {
    std::string text = corpus[rng.index(std::size(corpus))];
    const std::size_t rounds = 1 + rng.index(4);
    for (std::size_t r = 0; r < rounds; ++r)
      text = mutate(std::move(text), rng);
    try {
      (void)parse_impute_spec(text);
    } catch (const ImputeError&) {
      // the documented failure mode for malformed specs
    }
  }
}

TEST(ImputeSpecGarbage, ArbitraryPrintableStringsNeverCrashTheParser) {
  Rng rng(0x1217'1112ULL);
  const char kPool[] = "threshmcarof=,.0123456789einfa -_";
  for (int i = 0; i < 500; ++i) {
    std::string text;
    const std::size_t len = rng.index(40);
    for (std::size_t c = 0; c < len; ++c)
      text += kPool[rng.index(sizeof(kPool) - 1)];
    try {
      (void)parse_impute_spec(text);
    } catch (const ImputeError&) {
    }
  }
}

TEST(ServeSpecGarbage, ArbitraryPrintableStringsNeverCrashTheParser) {
  Rng rng(0x5E27'1112ULL);
  const char kPool[] = "openclosedratethinkqueuftwfqdlsg=,:/0123456789.smnu -_";
  for (int i = 0; i < 500; ++i) {
    std::string text;
    const std::size_t len = rng.index(50);
    for (std::size_t c = 0; c < len; ++c)
      text += kPool[rng.index(sizeof(kPool) - 1)];
    try {
      (void)serve::parse_serve_spec(text);
    } catch (const ServeError&) {
    }
  }
}

}  // namespace
}  // namespace isomer
