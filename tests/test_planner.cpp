// Adaptive planner + hybrid plan execution: per-site pricing, collapse to
// the pure strategies, mid-flight switching, stats-book feedback, and the
// serving layer's plan modes (docs/PLANNING.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isomer/analytic/planner.hpp"
#include "isomer/analytic/site_stats.hpp"
#include "isomer/common/error.hpp"
#include "isomer/core/operators.hpp"
#include "isomer/serve/planner.hpp"
#include "isomer/serve/server.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

/// The skew the planner exists for: DB1 evaluates every predicate locally
/// (selective — rows beat its wide extent), DB2/DB3 evaluate none
/// (survive ~ 1 — their narrow projected extents beat full row sets).
SynthFederation make_skewed(int big_objects = 400, int blind_objects = 120) {
  SampleParams sample;
  sample.n_db = 3;
  sample.n_targets = 2;
  sample.iso_ratio = 0.15;
  SampleParams::PerClass root;
  root.n_preds = 2;
  root.pred_selectivity = 0.25;
  root.ref_ratio = 0.8;
  SampleParams::PerDb evaluating;
  evaluating.n_objects = big_objects;
  evaluating.present_preds = {0, 1};
  SampleParams::PerDb blind;
  blind.n_objects = blind_objects;
  root.dbs = {evaluating, blind, blind};
  sample.classes.push_back(std::move(root));
  sample.materialize_seed = 42;
  return materialize_sample(sample);
}

/// A federation with no skew: every site evaluates every predicate, so
/// surviving rows are cheap everywhere and the plan collapses to pure BL.
SynthFederation make_uniform(int n_objects = 200) {
  SampleParams sample;
  sample.n_db = 3;
  sample.n_targets = 1;
  sample.iso_ratio = 0.15;
  SampleParams::PerClass root;
  root.n_preds = 2;
  root.pred_selectivity = 0.25;
  root.ref_ratio = 0.8;
  SampleParams::PerDb db;
  db.n_objects = n_objects;
  db.present_preds = {0, 1};
  root.dbs = {db, db, db};
  sample.classes.push_back(std::move(root));
  sample.materialize_seed = 43;
  return materialize_sample(sample);
}

TEST(PlanAdaptive, SkewYieldsMixedPaths) {
  const SynthFederation synth = make_skewed();
  const PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  ASSERT_EQ(choice.sites.size(), 3u);
  EXPECT_TRUE(choice.plan.hybrid) << choice.rationale;
  // The evaluating site ships its few surviving rows; the blind sites ship
  // their narrow extents.
  EXPECT_EQ(choice.sites[0].path, SitePath::Localized) << choice.rationale;
  EXPECT_EQ(choice.sites[1].path, SitePath::Central) << choice.rationale;
  EXPECT_EQ(choice.sites[2].path, SitePath::Central) << choice.rationale;
  // The mixture is priced strictly cheaper than both pure strategies.
  EXPECT_LT(choice.hybrid_bytes, choice.ca_bytes);
  EXPECT_LT(choice.hybrid_bytes, choice.localized_bytes);
  EXPECT_FALSE(choice.rationale.empty());
  // The plan mirrors the estimates it was derived from.
  ASSERT_EQ(choice.plan.sites.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(choice.plan.sites[i].db, choice.sites[i].db);
    EXPECT_EQ(choice.plan.sites[i].path, choice.sites[i].path);
  }
}

TEST(PlanAdaptive, UniformCollapsesToPureLocalized) {
  const SynthFederation synth = make_uniform();
  const PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  EXPECT_FALSE(choice.plan.hybrid) << choice.rationale;
  EXPECT_EQ(choice.plan.label, StrategyKind::BL);
  EXPECT_TRUE(choice.plan.sites.empty());
  for (const SitePlanEstimate& site : choice.sites)
    EXPECT_EQ(site.path, SitePath::Localized);
}

TEST(PlanAdaptive, Deterministic) {
  const SynthFederation synth = make_skewed();
  const PlanChoice a = plan_adaptive(*synth.federation, synth.query);
  const PlanChoice b = plan_adaptive(*synth.federation, synth.query);
  EXPECT_EQ(a.rationale, b.rationale);
  EXPECT_EQ(a.plan.hybrid, b.plan.hybrid);
  EXPECT_EQ(a.ca_bytes, b.ca_bytes);
  EXPECT_EQ(a.localized_bytes, b.localized_bytes);
  EXPECT_EQ(a.hybrid_bytes, b.hybrid_bytes);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].path, b.sites[i].path);
    EXPECT_EQ(a.sites[i].est_rows_bytes, b.sites[i].est_rows_bytes);
    EXPECT_EQ(a.sites[i].extent_bytes, b.sites[i].extent_bytes);
  }
}

TEST(PlanAdaptive, BookObservationsOverrideSampling) {
  const SynthFederation synth = make_skewed();
  const PlanChoice sampled = plan_adaptive(*synth.federation, synth.query);
  ASSERT_EQ(sampled.sites[1].path, SitePath::Central);

  // An observed payload far below the extent flips the site to Localized.
  SiteStatsBook book;
  book.observe(sampled.sites[1].db, 1.0);
  const PlanChoice corrected =
      plan_adaptive(*synth.federation, synth.query, {}, &book);
  EXPECT_TRUE(corrected.sites[1].from_book);
  EXPECT_EQ(corrected.sites[1].est_rows_bytes, 1.0);
  EXPECT_EQ(corrected.sites[1].path, SitePath::Localized);
  // Unobserved sites keep their sampling estimates.
  EXPECT_FALSE(corrected.sites[0].from_book);
  EXPECT_EQ(corrected.sites[0].est_rows_bytes,
            sampled.sites[0].est_rows_bytes);
}

TEST(SiteStatsBook, EwmaSeedsThenSmooths) {
  SiteStatsBook book(0.5);
  const DbId db{1};
  EXPECT_FALSE(book.rows_bytes(db).has_value());
  book.observe(db, 100.0);  // first observation seeds directly
  EXPECT_EQ(book.rows_bytes(db).value(), 100.0);
  EXPECT_EQ(book.observations(db), 1u);
  book.observe(db, 200.0);  // then EWMA: 0.5*200 + 0.5*100
  EXPECT_EQ(book.rows_bytes(db).value(), 150.0);
  EXPECT_EQ(book.observations(db), 2u);
  EXPECT_EQ(book.sites(), 1u);
}

TEST(SiteStatsBook, FoldsHybridTelemetry) {
  PlanTelemetry telemetry;
  SiteDecision decision;
  decision.db = DbId{2};
  decision.observed_rows_bytes = 640.0;
  telemetry.decisions.push_back(decision);
  SiteStatsBook book;
  book.fold(telemetry);
  EXPECT_EQ(book.rows_bytes(DbId{2}).value(), 640.0);
}

TEST(ExecutePlan, HybridMatchesReferenceAnswer) {
  const SynthFederation synth = make_skewed();
  const PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  ASSERT_TRUE(choice.plan.hybrid);
  StrategyOptions options;
  options.record_trace = false;
  const PlanReport hybrid =
      execute_plan(*synth.federation, synth.query, choice.plan, options);
  EXPECT_EQ(hybrid.report.result,
            reference_answer(*synth.federation, synth.query));
  // Every home site reports a decision; none switched (the plan already
  // placed each site on its cheaper path).
  ASSERT_EQ(hybrid.telemetry.decisions.size(), 3u);
  EXPECT_EQ(hybrid.telemetry.switches(), 0u);
  for (const SiteDecision& decision : hybrid.telemetry.decisions) {
    EXPECT_EQ(decision.planned, decision.executed);
    EXPECT_GT(decision.observed_rows_bytes, 0.0);
  }
}

TEST(ExecutePlan, HybridWireBeatsBothPureStrategies) {
  const SynthFederation synth = make_skewed();
  const PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  ASSERT_TRUE(choice.plan.hybrid);
  StrategyOptions options;
  options.record_trace = false;
  const Bytes hybrid =
      execute_plan(*synth.federation, synth.query, choice.plan, options)
          .report.bytes_transferred;
  const Bytes ca = execute_strategy(StrategyKind::CA, *synth.federation,
                                    synth.query, options)
                       .bytes_transferred;
  const Bytes bl = execute_strategy(StrategyKind::BL, *synth.federation,
                                    synth.query, options)
                       .bytes_transferred;
  EXPECT_LE(hybrid, std::min(ca, bl))
      << "hybrid " << hybrid << " vs CA " << ca << " vs BL " << bl;
}

TEST(ExecutePlan, MidFlightSwitchFiresOnUnderestimate) {
  const SynthFederation synth = make_skewed();
  PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  ASSERT_TRUE(choice.plan.hybrid);
  ASSERT_EQ(choice.plan.sites[1].path, SitePath::Central);
  // Mis-plan a blind site onto the Localized path with a wildly low row
  // estimate: after its local filter the observed payload exceeds
  // switch_factor x estimate while the extent is cheaper, so the home must
  // re-decide mid-flight.
  choice.plan.sites[1].path = SitePath::Localized;
  choice.plan.sites[1].est_rows_bytes = 1.0;
  choice.plan.switch_factor = 1.0;

  StrategyOptions options;
  options.record_trace = false;
  const PlanReport report =
      execute_plan(*synth.federation, synth.query, choice.plan, options);
  EXPECT_EQ(report.telemetry.switches(), 1u);
  const SiteDecision& switched = report.telemetry.decisions[1];
  EXPECT_TRUE(switched.switched);
  EXPECT_EQ(switched.planned, SitePath::Localized);
  EXPECT_EQ(switched.executed, SitePath::Central);
  // Switching changes the route, never the answer.
  EXPECT_EQ(report.report.result,
            reference_answer(*synth.federation, synth.query));
}

TEST(ExecutePlan, SwitchDisabledWhenFactorIsZero) {
  const SynthFederation synth = make_skewed();
  PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  ASSERT_TRUE(choice.plan.hybrid);
  choice.plan.sites[1].path = SitePath::Localized;
  choice.plan.sites[1].est_rows_bytes = 1.0;
  choice.plan.switch_factor = 0;  // adaptive-without-insurance mode

  StrategyOptions options;
  options.record_trace = false;
  const PlanReport report =
      execute_plan(*synth.federation, synth.query, choice.plan, options);
  EXPECT_EQ(report.telemetry.switches(), 0u);
  EXPECT_EQ(report.telemetry.decisions[1].executed, SitePath::Localized);
  EXPECT_EQ(report.report.result,
            reference_answer(*synth.federation, synth.query));
}

TEST(ExecutePlan, HybridEmitsPlanSpans) {
  const SynthFederation synth = make_skewed();
  PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  ASSERT_TRUE(choice.plan.hybrid);
  // Force one switch so both span flavors appear.
  choice.plan.sites[1].path = SitePath::Localized;
  choice.plan.sites[1].est_rows_bytes = 1.0;
  choice.plan.switch_factor = 1.0;

  obs::TraceSession session;
  StrategyOptions options;
  options.record_trace = false;
  options.trace_session = &session;
  (void)execute_plan(*synth.federation, synth.query, choice.plan, options);

  std::size_t site_spans = 0, switch_spans = 0;
  for (const obs::PhaseSpan& span : session.spans()) {
    if (span.phase != Phase::Plan) continue;
    EXPECT_EQ(span.strategy, "HY");
    if (span.step == "plan.switch")
      ++switch_spans;
    else if (span.step.rfind("plan.site", 0) == 0)
      ++site_spans;
  }
  EXPECT_EQ(site_spans, 3u);   // one decision span per home site
  EXPECT_EQ(switch_spans, 1u); // the forced mid-flight switch
}

TEST(ExecPlan, ToTextNamesEverySite) {
  const SynthFederation synth = make_skewed();
  const PlanChoice choice = plan_adaptive(*synth.federation, synth.query);
  const std::string text = choice.plan.to_text();
  EXPECT_NE(text.find("hybrid"), std::string::npos) << text;
  EXPECT_NE(text.find("localized"), std::string::npos) << text;
  EXPECT_NE(text.find("central"), std::string::npos) << text;
  const std::string pure = ExecPlan::pure(StrategyKind::CA).to_text();
  EXPECT_NE(pure.find("CA"), std::string::npos) << pure;
}

TEST(ServePlanner, ParsePlanModeRoundTrips) {
  for (const serve::PlanMode mode :
       {serve::PlanMode::Static, serve::PlanMode::Adaptive,
        serve::PlanMode::Hybrid})
    EXPECT_EQ(serve::parse_plan_mode(to_string(mode)), mode);
  EXPECT_THROW((void)serve::parse_plan_mode("eager"), ServeError);
}

serve::ServeSpec closed_spec(std::size_t n) {
  serve::ServeSpec spec;
  spec.mode = serve::ArrivalMode::Closed;
  spec.clients = 2;
  spec.think_ns = 0;
  spec.n_queries = n;
  spec.queue_limit = 0;
  spec.site_inflight = 2;
  return spec;
}

TEST(ServePlanner, AdaptiveWireAtMostBestStatic) {
  const SynthFederation synth = make_skewed();
  const std::vector<GlobalQuery> queries{synth.query};

  const auto serve_wire = [&](const std::vector<serve::ServeRequest>& pool,
                              bool with_book) {
    serve::ServeOptions options;
    SiteStatsBook book;
    if (with_book) options.stats_book = &book;
    return serve::serve(*synth.federation, pool, closed_spec(6), options)
        .bytes_transferred;
  };

  Bytes best_static = 0;
  for (const StrategyKind kind :
       {StrategyKind::CA, StrategyKind::BL, StrategyKind::PL}) {
    serve::ServeRequest request;
    request.query = synth.query;
    request.kind = kind;
    const Bytes wire = serve_wire({request}, false);
    best_static = best_static == 0 ? wire : std::min(best_static, wire);
  }

  serve::PlannerOptions planner;
  planner.mode = serve::PlanMode::Adaptive;
  const std::vector<serve::ServeRequest> adaptive_pool =
      serve::plan_pool(*synth.federation, queries, planner);
  ASSERT_EQ(adaptive_pool.size(), 1u);
  EXPECT_NE(adaptive_pool[0].plan, nullptr);
  EXPECT_NE(adaptive_pool[0].replan, nullptr);
  const Bytes adaptive = serve_wire(adaptive_pool, true);
  EXPECT_LE(adaptive, best_static)
      << "adaptive " << adaptive << " vs best static " << best_static;
}

TEST(ServePlanner, HybridOutcomesCarryPlanTelemetry) {
  const SynthFederation synth = make_skewed();
  serve::PlannerOptions planner;
  planner.mode = serve::PlanMode::Hybrid;
  const std::vector<serve::ServeRequest> pool =
      serve::plan_pool(*synth.federation, {synth.query}, planner);

  serve::ServeOptions options;
  SiteStatsBook book;
  options.stats_book = &book;
  const serve::ServeReport report =
      serve::serve(*synth.federation, pool, closed_spec(4), options);
  ASSERT_EQ(report.completed, 4u);
  for (const serve::ServeOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.hybrid);
    EXPECT_EQ(outcome.result, reference_answer(*synth.federation, synth.query));
  }
  // Every completed hybrid execution fed the book, at every home site.
  EXPECT_EQ(book.sites(), 3u);
  for (const serve::ServeRequest& request : pool)
    for (const SiteAssignment& site : request.plan->sites)
      EXPECT_GE(book.observations(site.db), 4u);
}

TEST(ServePlanner, StatsBookRunsAreDeterministic) {
  const SynthFederation synth = make_skewed();
  serve::PlannerOptions planner;
  planner.mode = serve::PlanMode::Adaptive;
  const std::vector<serve::ServeRequest> pool =
      serve::plan_pool(*synth.federation, {synth.query}, planner);

  const auto run = [&]() {
    serve::ServeOptions options;
    SiteStatsBook book;
    options.stats_book = &book;
    return serve::serve(*synth.federation, pool, closed_spec(6), options);
  };
  const serve::ServeReport a = run();
  const serve::ServeReport b = run();
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion) << i;
    EXPECT_EQ(a.outcomes[i].wire_bytes, b.outcomes[i].wire_bytes) << i;
    EXPECT_EQ(a.outcomes[i].plan_switches, b.outcomes[i].plan_switches) << i;
  }
}

TEST(ServePlanner, PaperExampleStaticAndAdaptiveAgreeOnAnswers) {
  // The running example is tiny and unskewed; whatever mode plans it, every
  // completed answer must match the reference.
  const paper::UniversityExample example = paper::make_university();
  const QueryResult expected =
      reference_answer(*example.federation, paper::q1());
  for (const serve::PlanMode mode :
       {serve::PlanMode::Static, serve::PlanMode::Adaptive,
        serve::PlanMode::Hybrid}) {
    serve::PlannerOptions planner;
    planner.mode = mode;
    const std::vector<serve::ServeRequest> pool =
        serve::plan_pool(*example.federation, {paper::q1()}, planner);
    serve::ServeOptions options;
    SiteStatsBook book;
    if (mode != serve::PlanMode::Static) options.stats_book = &book;
    const serve::ServeReport report =
        serve::serve(*example.federation, pool, closed_spec(3), options);
    ASSERT_EQ(report.completed, 3u) << to_string(mode);
    for (const serve::ServeOutcome& outcome : report.outcomes)
      EXPECT_EQ(outcome.result, expected) << to_string(mode);
  }
}

}  // namespace
}  // namespace isomer
