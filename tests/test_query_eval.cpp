// The query AST and three-valued evaluation over a component database.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/query/eval.hpp"
#include "isomer/query/printer.hpp"

namespace isomer {
namespace {

/// A small school database with deliberate missing data:
///  - t_nodept has a null department,
///  - t_dangling references a department that does not exist,
///  - the Teacher class itself lacks a `speciality` attribute.
class EvalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ComponentSchema schema(DbId{1}, "DB1");
    schema.add_class("Department")
        .add_attribute("name", PrimType::String)
        .add_attribute("budget", PrimType::Int);
    schema.add_class("Teacher")
        .add_attribute("name", PrimType::String)
        .add_attribute("department", ComplexType{"Department"})
        .add_attribute("committees", ComplexType{"Department", true});
    db_ = std::make_unique<ComponentDatabase>(std::move(schema));
    cs_ = db_->insert("Department", {{"name", "CS"}, {"budget", 100}});
    ee_ = db_->insert("Department", {{"name", "EE"}, {"budget", 50}});
    t_cs_ = db_->insert("Teacher",
                        {{"name", "Ann"}, {"department", LocalRef{cs_}}});
    t_nodept_ = db_->insert("Teacher", {{"name", "Bob"}});
    t_dangling_ = db_->insert(
        "Teacher",
        {{"name", "Cid"}, {"department", LocalRef{LOid{DbId{1}, 999}}}});
    t_committees_ = db_->insert(
        "Teacher", {{"name", "Dot"}, {"committees", LocalRefSet{{ee_, cs_}}}});
  }

  const Object& obj(LOid id) { return *db_->fetch(id); }

  std::unique_ptr<ComponentDatabase> db_;
  LOid cs_, ee_, t_cs_, t_nodept_, t_dangling_, t_committees_;
};

Predicate pred(const char* path, CompOp op, Value literal) {
  return Predicate{PathExpr::parse(path), op, std::move(literal)};
}

TEST_F(EvalFixture, SimplePredicate) {
  EXPECT_EQ(eval_predicate(*db_, obj(t_cs_), pred("name", CompOp::Eq, "Ann"))
                .truth,
            Truth::True);
  EXPECT_EQ(eval_predicate(*db_, obj(t_cs_), pred("name", CompOp::Eq, "Zed"))
                .truth,
            Truth::False);
}

TEST_F(EvalFixture, NestedPredicate) {
  EXPECT_EQ(eval_predicate(*db_, obj(t_cs_),
                           pred("department.name", CompOp::Eq, "CS"))
                .truth,
            Truth::True);
  EXPECT_EQ(eval_predicate(*db_, obj(t_cs_),
                           pred("department.budget", CompOp::Gt, 200))
                .truth,
            Truth::False);
}

TEST_F(EvalFixture, NullRefYieldsUnknownWithSite) {
  const PredicateOutcome outcome = eval_predicate(
      *db_, obj(t_nodept_), pred("department.name", CompOp::Eq, "CS"));
  EXPECT_EQ(outcome.truth, Truth::Unknown);
  ASSERT_TRUE(outcome.site.has_value());
  EXPECT_EQ(outcome.site->holder, t_nodept_);
  EXPECT_EQ(outcome.site->step, 0u);
}

TEST_F(EvalFixture, DanglingRefYieldsUnknown) {
  const PredicateOutcome outcome = eval_predicate(
      *db_, obj(t_dangling_), pred("department.name", CompOp::Eq, "CS"));
  EXPECT_EQ(outcome.truth, Truth::Unknown);
  ASSERT_TRUE(outcome.site.has_value());
  EXPECT_EQ(outcome.site->holder, t_dangling_);
}

TEST_F(EvalFixture, MissingAttributeYieldsUnknown) {
  // `speciality` is not an attribute of Teacher at all.
  const PredicateOutcome outcome = eval_predicate(
      *db_, obj(t_cs_), pred("speciality", CompOp::Eq, "db"));
  EXPECT_EQ(outcome.truth, Truth::Unknown);
  ASSERT_TRUE(outcome.site.has_value());
  EXPECT_EQ(outcome.site->holder, t_cs_);
  EXPECT_EQ(outcome.site->step, 0u);
}

TEST_F(EvalFixture, NullFinalValueYieldsUnknownAtFinalStep) {
  const LOid nameless = db_->insert("Teacher", {});
  const PredicateOutcome outcome =
      eval_predicate(*db_, obj(nameless), pred("name", CompOp::Eq, "Ann"));
  EXPECT_EQ(outcome.truth, Truth::Unknown);
  ASSERT_TRUE(outcome.site.has_value());
  EXPECT_EQ(outcome.site->holder, nameless);
}

TEST_F(EvalFixture, RefSetHasExistentialSemantics) {
  // Dot sits on the EE and CS committees: exists one named CS.
  EXPECT_EQ(eval_predicate(*db_, obj(t_committees_),
                           pred("committees.name", CompOp::Eq, "CS"))
                .truth,
            Truth::True);
  EXPECT_EQ(eval_predicate(*db_, obj(t_committees_),
                           pred("committees.name", CompOp::Eq, "PH"))
                .truth,
            Truth::False);
}

TEST_F(EvalFixture, PredicateContractChecks) {
  EXPECT_THROW((void)eval_predicate(*db_, obj(t_cs_),
                                    pred("name", CompOp::Eq, Value::null())),
               ContractViolation)
      << "null literals are rejected";
  EXPECT_THROW(
      (void)eval_predicate(*db_, obj(t_cs_),
                           pred("name.more", CompOp::Eq, "x")),
      QueryError)
      << "paths continuing past primitives are malformed";
}

TEST_F(EvalFixture, ComparisonsAreMetered) {
  AccessMeter meter;
  (void)eval_predicate(*db_, obj(t_cs_),
                       pred("department.name", CompOp::Eq, "CS"), &meter);
  EXPECT_EQ(meter.comparisons, 1u);
  EXPECT_EQ(meter.objects_fetched, 1u);  // the department
}

TEST_F(EvalFixture, ConjunctionCollectsAllUnknownSites) {
  const std::vector<Predicate> preds = {
      pred("name", CompOp::Eq, "Bob"),
      pred("department.name", CompOp::Eq, "CS"),
      pred("speciality", CompOp::Eq, "db"),
  };
  const ObjectEval eval = eval_conjunction(*db_, obj(t_nodept_), preds);
  EXPECT_EQ(eval.truth, Truth::Unknown);
  ASSERT_EQ(eval.unknowns.size(), 2u);
  EXPECT_EQ(eval.unknowns[0].predicate_index, 1u);
  EXPECT_EQ(eval.unknowns[1].predicate_index, 2u);
}

TEST_F(EvalFixture, ConjunctionFalseDominates) {
  const std::vector<Predicate> preds = {
      pred("name", CompOp::Eq, "NotBob"),
      pred("speciality", CompOp::Eq, "db"),
  };
  EXPECT_EQ(eval_conjunction(*db_, obj(t_nodept_), preds).truth,
            Truth::False);
}

TEST_F(EvalFixture, EmptyConjunctionIsTrue) {
  EXPECT_EQ(eval_conjunction(*db_, obj(t_cs_), {}).truth, Truth::True);
}

TEST_F(EvalFixture, EvalPath) {
  EXPECT_EQ(eval_path(*db_, obj(t_cs_), PathExpr::parse("department.name")),
            Value("CS"));
  EXPECT_TRUE(eval_path(*db_, obj(t_nodept_),
                        PathExpr::parse("department.name"))
                  .is_null());
  EXPECT_TRUE(
      eval_path(*db_, obj(t_cs_), PathExpr::parse("speciality")).is_null());
  EXPECT_EQ(eval_path(*db_, obj(t_cs_), PathExpr::parse("department")),
            Value(LocalRef{cs_}));
}

TEST_F(EvalFixture, WalkPrefix) {
  const Object* reached =
      walk_prefix(*db_, obj(t_cs_), PathExpr::parse("department"));
  ASSERT_NE(reached, nullptr);
  EXPECT_EQ(reached->id(), cs_);
  EXPECT_EQ(walk_prefix(*db_, obj(t_nodept_), PathExpr::parse("department")),
            nullptr);
  EXPECT_EQ(walk_prefix(*db_, obj(t_cs_), PathExpr::parse("name")), nullptr)
      << "primitive steps reach no object";
}

// --- operators ---

TEST(CompOp, AppliesAllOperators) {
  EXPECT_EQ(apply(CompOp::Eq, Value(1), Value(1)), Truth::True);
  EXPECT_EQ(apply(CompOp::Ne, Value(1), Value(1)), Truth::False);
  EXPECT_EQ(apply(CompOp::Lt, Value(1), Value(2)), Truth::True);
  EXPECT_EQ(apply(CompOp::Le, Value(2), Value(2)), Truth::True);
  EXPECT_EQ(apply(CompOp::Gt, Value(3), Value(2)), Truth::True);
  EXPECT_EQ(apply(CompOp::Ge, Value(1), Value(2)), Truth::False);
}

TEST(CompOp, NullPropagatesThroughAllOperators) {
  for (const CompOp op : {CompOp::Eq, CompOp::Ne, CompOp::Lt, CompOp::Le,
                          CompOp::Gt, CompOp::Ge})
    EXPECT_EQ(apply(op, Value::null(), Value(1)), Truth::Unknown);
}

TEST(CompOp, Names) {
  EXPECT_EQ(to_string(CompOp::Eq), "=");
  EXPECT_EQ(to_string(CompOp::Ne), "<>");
  EXPECT_EQ(to_string(CompOp::Ge), ">=");
}

// --- builders and printing ---

TEST(GlobalQueryBuilder, FluentConstruction) {
  GlobalQuery query;
  query.range_class = "Student";
  query.select("name").select("advisor.name");
  query.where("age", CompOp::Ge, 21);
  ASSERT_EQ(query.targets.size(), 2u);
  ASSERT_EQ(query.predicates.size(), 1u);
  EXPECT_EQ(query.predicates[0].path.dotted(), "age");
  EXPECT_EQ(to_sqlx(query),
            "Select X.name, X.advisor.name From Student X Where X.age>=21");
}

TEST(GlobalQueryBuilder, NoPredicates) {
  GlobalQuery query;
  query.range_class = "Student";
  query.select("name");
  EXPECT_EQ(to_sqlx(query), "Select X.name From Student X");
}

}  // namespace
}  // namespace isomer
