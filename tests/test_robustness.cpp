// Robustness: fuzzed inputs and corrupted federations must fail through
// typed errors (or succeed), never crash or corrupt state.
#include <gtest/gtest.h>

#include "isomer/common/rng.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/io/catalog.hpp"
#include "isomer/query/parser.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

/// Random printable garbage plus structure-adjacent characters.
std::string random_text(Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcXYZ0129 .,*()<>=!'\"\\#\n\t_-";
  std::string text;
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  for (std::size_t i = 0; i < len; ++i)
    text += kAlphabet[rng.index(sizeof(kAlphabet) - 1)];
  return text;
}

/// Applies one random mutation (substitute / insert / delete) to `text`.
std::string mutate(Rng& rng, std::string text) {
  if (text.empty()) return text;
  static constexpr char kBytes[] = "\"\\()=.<>x0\n ";
  const std::size_t pos = rng.index(text.size());
  switch (rng.uniform_int(0, 2)) {
    case 0:
      text[pos] = kBytes[rng.index(sizeof(kBytes) - 1)];
      break;
    case 1:
      text.insert(pos, 1, kBytes[rng.index(sizeof(kBytes) - 1)]);
      break;
    default:
      text.erase(pos, 1);
      break;
  }
  return text;
}

TEST(ParserFuzz, GarbageNeverCrashes) {
  Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    const std::string text = random_text(rng, 120);
    try {
      (void)parse_sqlx(text);
    } catch (const ParseError&) {
      // expected for almost everything
    }
  }
}

TEST(ParserFuzz, MutatedValidQueriesFailCleanly) {
  Rng rng(4243);
  const std::string base =
      "Select X.name, X.advisor.name From Student X Where "
      "X.address.city=Taipei and (X.advisor.speciality=database or "
      "X.age>=30)";
  for (int i = 0; i < 2000; ++i) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.uniform_int(1, 6));
    for (int m = 0; m < mutations; ++m) text = mutate(rng, std::move(text));
    try {
      (void)parse_sqlx(text);
    } catch (const ParseError&) {
    }
  }
}

TEST(CatalogFuzz, MutatedCatalogsFailCleanly) {
  const paper::UniversityExample example = paper::make_university();
  const std::string base = save_catalog(*example.federation);
  Rng rng(4244);
  int survived = 0;
  for (int i = 0; i < 300; ++i) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) text = mutate(rng, std::move(text));
    try {
      const auto reloaded = load_catalog(text);
      ++survived;  // harmless mutation (comment, value tweak, ...)
      // Whatever loaded must be internally consistent enough to answer.
      if (reloaded->schema().find_class("Student") != nullptr)
        (void)reference_answer(*reloaded, paper::q1());
    } catch (const Error&) {
      // typed failure: CatalogError / SchemaError / FederationError / ...
    } catch (const std::invalid_argument&) {
      // std::stoul on a mangled number — acceptable typed failure
    } catch (const std::out_of_range&) {
    }
  }
  // Sanity: the fuzz actually exercised both paths.
  EXPECT_GT(survived, 0);
  EXPECT_LT(survived, 300);
}

TEST(Robustness, InconsistentFederationStillAnswers) {
  // Violate the consistency assumption on purpose: isomeric students with
  // different names. The equivalence GUARANTEE is off (documented), but
  // every strategy must still terminate with some answer and no crash.
  paper::UniversityExample example = paper::make_university();
  // make_university returns const dbs through the federation; rebuild with a
  // conflict instead: John's DB2 isomer gets a different sex.
  // (set via the catalog round-trip, which exposes mutable stores)
  const std::string text = save_catalog(*example.federation);
  const std::string corrupted = [&] {
    std::string t = text;
    // John is null-sexed in DB1 and "male" in DB2; flip the DB2 copy so the
    // entity carries conflicting evidence... no: null vs male never
    // conflicts. Instead flip John's *name* in DB2 — both databases store
    // it non-null, so the isomers now disagree.
    const std::size_t db2 = t.find("database 2");
    EXPECT_NE(db2, std::string::npos);
    const std::size_t pos = t.find("\"name\" = str \"John\"", db2);
    EXPECT_NE(pos, std::string::npos);
    return t.replace(pos, std::string("\"name\" = str \"John\"").size(),
                     "\"name\" = str \"Jon\"");
  }();
  const auto federation = load_catalog(corrupted);
  EXPECT_FALSE(federation->check_consistency().empty());

  GlobalQuery query;
  query.range_class = "Student";
  query.select("name");
  query.where("sex", CompOp::Eq, "male");
  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *federation, query);
    EXPECT_GT(report.response_ns, 0) << to_string(kind);
  }
}

TEST(Robustness, QueriesAgainstWrongSchemaFailTyped) {
  const paper::UniversityExample example = paper::make_university();
  GlobalQuery bad;
  bad.range_class = "Nope";
  bad.select("name");
  for (const StrategyKind kind : kAllStrategies)
    EXPECT_THROW((void)execute_strategy(kind, *example.federation, bad),
                 Error)
        << to_string(kind);
}

}  // namespace
}  // namespace isomer
