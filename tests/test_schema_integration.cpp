// Schema integration: attribute union, renaming, missing attributes, path
// translation, and local-query derivation.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/schema/integrator.hpp"
#include "isomer/schema/translate.hpp"

namespace isomer {
namespace {

/// Two databases with overlapping Person classes; DB2 renames "years" for
/// what DB1 calls "age" and holds "email" that DB1 lacks.
class IntegrationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = ComponentSchema(DbId{1}, "DB1");
    a_.add_class("Person")
        .add_attribute("pid", PrimType::Int)
        .add_attribute("name", PrimType::String)
        .add_attribute("age", PrimType::Int)
        .add_attribute("employer", ComplexType{"Company"});
    a_.add_class("Company").add_attribute("name", PrimType::String);
    a_.validate();

    b_ = ComponentSchema(DbId{2}, "DB2");
    b_.add_class("Citizen")
        .add_attribute("pid", PrimType::Int)
        .add_attribute("name", PrimType::String)
        .add_attribute("years", PrimType::Int)
        .add_attribute("email", PrimType::String);
    b_.validate();

    spec_ = IntegrationSpec{};
    ClassSpec& person = spec_.add_class("Person");
    person.constituents = {{DbId{1}, "Person"}, {DbId{2}, "Citizen"}};
    person.attr_mappings.push_back(AttrMapping{"age", DbId{2}, "years"});
    person.identity_attribute = "pid";
    ClassSpec& company = spec_.add_class("Company");
    company.constituents = {{DbId{1}, "Company"}};
  }

  ComponentSchema a_, b_;
  IntegrationSpec spec_;
};

TEST_F(IntegrationFixture, AttributeUnionInFirstAppearanceOrder) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const GlobalClass& person = global.cls("Person");
  ASSERT_EQ(person.def().attribute_count(), 5u);
  EXPECT_EQ(person.def().attribute(0).name, "pid");
  EXPECT_EQ(person.def().attribute(1).name, "name");
  EXPECT_EQ(person.def().attribute(2).name, "age");
  EXPECT_EQ(person.def().attribute(3).name, "employer");
  EXPECT_EQ(person.def().attribute(4).name, "email");
}

TEST_F(IntegrationFixture, RenamedAttributeBindsToLocalName) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const GlobalClass& person = global.cls("Person");
  const auto db2 = person.constituent_in(DbId{2});
  ASSERT_TRUE(db2.has_value());
  const auto age = person.def().find_attribute("age");
  EXPECT_EQ(person.local_attr(*db2, *age), "years");
  // And "years" is not duplicated as its own global attribute.
  EXPECT_FALSE(person.def().has_attribute("years"));
}

TEST_F(IntegrationFixture, MissingAttributesPerConstituent) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const GlobalClass& person = global.cls("Person");
  EXPECT_EQ(person.missing_attributes(*person.constituent_in(DbId{1})),
            std::vector<std::string>{"email"});
  EXPECT_EQ(person.missing_attributes(*person.constituent_in(DbId{2})),
            std::vector<std::string>{"employer"});
}

TEST_F(IntegrationFixture, ComplexDomainResolvesToGlobalClass) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const auto employer =
      global.cls("Person").def().find_attribute("employer");
  const auto& type = global.cls("Person").def().attribute(*employer).type;
  EXPECT_EQ(std::get<ComplexType>(type).domain_class, "Company");
}

TEST_F(IntegrationFixture, ReverseLookup) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  EXPECT_EQ(global.global_class_of(DbId{2}, "Citizen")->name(), "Person");
  EXPECT_EQ(global.global_class_of(DbId{1}, "Company")->name(), "Company");
  EXPECT_EQ(global.global_class_of(DbId{2}, "Company"), nullptr);
}

TEST_F(IntegrationFixture, IdentityAttributePropagates) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  EXPECT_EQ(global.cls("Person").def().identity_attribute(), "pid");
}

TEST_F(IntegrationFixture, IncompatibleTypesRejected) {
  ComponentSchema c(DbId{3}, "DB3");
  c.add_class("Person")
      .add_attribute("pid", PrimType::Int)
      .add_attribute("age", PrimType::String);  // string vs int
  spec_.classes[0].constituents.push_back({DbId{3}, "Person"});
  EXPECT_THROW((void)integrate({&a_, &b_, &c}, spec_), SchemaError);
}

TEST_F(IntegrationFixture, UnintegratedDomainRejected) {
  IntegrationSpec bad;
  ClassSpec& person = bad.add_class("Person");
  person.constituents = {{DbId{1}, "Person"}};
  // Company is referenced by Person.employer but not integrated.
  EXPECT_THROW((void)integrate({&a_, &b_}, bad), SchemaError);
}

TEST_F(IntegrationFixture, StructuralErrors) {
  {
    IntegrationSpec bad = spec_;
    bad.classes[0].constituents.push_back({DbId{1}, "Person"});
    EXPECT_THROW((void)integrate({&a_, &b_}, bad), SchemaError)
        << "two constituents in one database";
  }
  {
    IntegrationSpec bad = spec_;
    bad.classes[0].constituents[1].local_class = "Nope";
    EXPECT_THROW((void)integrate({&a_, &b_}, bad), SchemaError);
  }
  {
    IntegrationSpec bad = spec_;
    bad.classes[1].constituents.clear();
    EXPECT_THROW((void)integrate({&a_, &b_}, bad), SchemaError)
        << "a global class needs at least one constituent";
  }
  {
    IntegrationSpec bad = spec_;
    bad.classes[0].identity_attribute = "nope";
    EXPECT_THROW((void)integrate({&a_, &b_}, bad), SchemaError);
  }
}

TEST_F(IntegrationFixture, SameLocalClassCannotJoinTwoGlobalClasses) {
  IntegrationSpec bad = spec_;
  ClassSpec& dup = bad.add_class("PersonCopy");
  dup.constituents = {{DbId{1}, "Person"}};
  EXPECT_THROW((void)integrate({&a_, &b_}, bad), SchemaError);
}

// --- path translation ---

TEST_F(IntegrationFixture, TranslateCompletePath) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const PathTranslation t =
      global.translate_path("Person", PathExpr::parse("age"), DbId{2});
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.local.dotted(), "years");
}

TEST_F(IntegrationFixture, TranslateNestedPath) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const PathTranslation t = global.translate_path(
      "Person", PathExpr::parse("employer.name"), DbId{1});
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.local.dotted(), "employer.name");
}

TEST_F(IntegrationFixture, TranslateStopsAtMissingAttribute) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  const PathTranslation t = global.translate_path(
      "Person", PathExpr::parse("employer.name"), DbId{2});
  EXPECT_FALSE(t.complete());
  EXPECT_EQ(t.missing_at, 0u);
  EXPECT_EQ(t.local.length(), 0u);
}

TEST_F(IntegrationFixture, TranslateRejectsUnresolvablePath) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  EXPECT_THROW((void)global.translate_path("Person",
                                           PathExpr::parse("nope"), DbId{1}),
               QueryError);
}

// --- local query derivation ---

TEST_F(IntegrationFixture, DeriveLocalQuerySplitsPredicates) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  GlobalQuery query;
  query.range_class = "Person";
  query.select("name");
  query.where("age", CompOp::Ge, 30);
  query.where("email", CompOp::Eq, "x@y");
  query.where("employer.name", CompOp::Eq, "ACME");

  const auto local1 = derive_local_query(global, query, DbId{1});
  ASSERT_TRUE(local1.has_value());
  EXPECT_EQ(local1->root_class, "Person");
  ASSERT_EQ(local1->local_predicates.size(), 2u);  // age, employer.name
  EXPECT_EQ(local1->local_predicate_origin, (std::vector<std::size_t>{0, 2}));
  ASSERT_EQ(local1->unsolved_predicates.size(), 1u);  // email
  EXPECT_EQ(local1->unsolved_predicates[0].predicate_index, 1u);
  EXPECT_TRUE(local1->unsolved_item_paths.empty())
      << "email is missing on the root itself, no item projection";

  const auto local2 = derive_local_query(global, query, DbId{2});
  ASSERT_TRUE(local2.has_value());
  EXPECT_EQ(local2->root_class, "Citizen");
  ASSERT_EQ(local2->local_predicates.size(), 2u);  // years, email
  EXPECT_EQ(local2->local_predicates[0].path.dotted(), "years")
      << "paths are translated into local attribute names";
  ASSERT_EQ(local2->unsolved_predicates.size(), 1u);  // employer.name
  EXPECT_EQ(local2->target_origin, (std::vector<std::size_t>{0}));
}

TEST_F(IntegrationFixture, DeriveLocalQueryAbsentConstituent) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  GlobalQuery query;
  query.range_class = "Company";
  query.select("name");
  EXPECT_FALSE(derive_local_query(global, query, DbId{2}).has_value());
  EXPECT_EQ(local_query_sites(global, query), (std::vector<DbId>{DbId{1}}));
}

TEST_F(IntegrationFixture, DeriveDropsUntranslatableTargets) {
  const GlobalSchema global = integrate({&a_, &b_}, spec_);
  GlobalQuery query;
  query.range_class = "Person";
  query.select("email").select("name");
  const auto local1 = derive_local_query(global, query, DbId{1});
  ASSERT_EQ(local1->targets.size(), 1u);
  EXPECT_EQ(local1->targets[0].dotted(), "name");
  EXPECT_EQ(local1->target_origin, (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace isomer
