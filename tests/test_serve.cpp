// Serving layer: admission, scheduling policies, backpressure, per-query
// accounting, and equivalence with the direct executor path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "isomer/common/error.hpp"
#include "isomer/serve/planner.hpp"
#include "isomer/serve/server.hpp"
#include "isomer/workload/arrivals.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

using serve::ArrivalMode;
using serve::SchedPolicy;
using serve::ServeOptions;
using serve::ServeOutcome;
using serve::ServeReport;
using serve::ServeRequest;
using serve::ServeSpec;

ServeSpec open_spec(std::size_t n) {
  ServeSpec spec;
  spec.mode = ArrivalMode::Open;
  spec.rate_qps = 50;
  spec.n_queries = n;
  spec.queue_limit = 0;
  spec.site_inflight = 0;
  return spec;
}

TEST(Serve, SingleQueryMatchesStandaloneExecution) {
  // The serving layer is a scheduler, not an executor: one query through it
  // must reproduce the direct execute_strategy figures exactly — same
  // answer, same bytes on the wire, same message count, same busy time.
  const paper::UniversityExample example = paper::make_university();
  for (const StrategyKind kind : kAllStrategies) {
    StrategyOptions solo_options;
    solo_options.record_trace = false;
    const StrategyReport solo =
        execute_strategy(kind, *example.federation, paper::q1(), solo_options);

    const std::vector<ServeRequest> pool{{paper::q1(), kind, 1.0}};
    const ServeReport report =
        serve::serve(*example.federation, pool, open_spec(1), {});
    ASSERT_EQ(report.outcomes.size(), 1u) << to_string(kind);
    const ServeOutcome& outcome = report.outcomes[0];
    EXPECT_FALSE(outcome.rejected);
    EXPECT_EQ(outcome.result, solo.result) << to_string(kind);
    EXPECT_EQ(outcome.latency(), solo.response_ns) << to_string(kind);
    EXPECT_EQ(outcome.wire_bytes, solo.bytes_transferred) << to_string(kind);
    EXPECT_EQ(outcome.messages, solo.messages) << to_string(kind);
    EXPECT_EQ(report.bytes_transferred, solo.bytes_transferred);
    EXPECT_EQ(report.messages, solo.messages);
    EXPECT_EQ(report.total_busy_ns, solo.total_ns);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.rejected, 0u);
  }
}

TEST(Serve, EveryCompletedAnswerMatchesTheReference) {
  const paper::UniversityExample example = paper::make_university();
  const QueryResult expected =
      reference_answer(*example.federation, paper::q1());
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0},
                                       {paper::q1(), StrategyKind::PL, 2.0},
                                       {paper::q1(), StrategyKind::CA, 3.0}};
  ServeSpec spec;
  spec.mode = ArrivalMode::Closed;
  spec.clients = 3;
  spec.think_ns = 0;
  spec.n_queries = 12;
  spec.queue_limit = 0;
  spec.site_inflight = 2;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(report.completed, 12u);
  for (const ServeOutcome& outcome : report.outcomes)
    EXPECT_EQ(outcome.result, expected);
}

TEST(Serve, DeterministicReplay) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0},
                                       {paper::q1(), StrategyKind::PL, 2.0}};
  ServeSpec spec = open_spec(10);
  spec.rate_qps = 200;
  spec.site_inflight = 2;
  spec.seed = 7;
  const ServeReport a = serve::serve(*example.federation, pool, spec, {});
  const ServeReport b = serve::serve(*example.federation, pool, spec, {});
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].arrival, b.outcomes[i].arrival) << i;
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start) << i;
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion) << i;
    EXPECT_EQ(a.outcomes[i].pool_index, b.outcomes[i].pool_index) << i;
    EXPECT_EQ(a.outcomes[i].wire_bytes, b.outcomes[i].wire_bytes) << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.total_busy_ns, b.total_busy_ns);
}

TEST(Serve, BoundedQueueRejectsInsteadOfDeadlocking) {
  // A tiny queue under a hard arrival burst: overflow arrivals bounce with
  // a tagged outcome at their arrival instant, everything else completes,
  // and the run terminates (the test finishing IS the no-deadlock check).
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec = open_spec(12);
  spec.rate_qps = 1e6;  // essentially simultaneous arrivals
  spec.queue_limit = 2;
  spec.site_inflight = 1;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(report.completed + report.rejected, 12u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_LE(report.max_queue_depth, 2u);
  for (const ServeOutcome& outcome : report.outcomes) {
    if (!outcome.rejected) continue;
    EXPECT_EQ(outcome.completion, outcome.arrival);
    EXPECT_EQ(outcome.wire_bytes, 0u);
    EXPECT_TRUE(outcome.result.rows.empty());
  }
}

TEST(Serve, ClosedLoopClientsSurviveRejection) {
  // Rejected clients back off and resubmit rather than stalling: all
  // n_queries submissions happen even when the queue keeps overflowing.
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec;
  spec.mode = ArrivalMode::Closed;
  spec.clients = 6;
  spec.think_ns = 0;
  spec.n_queries = 20;
  spec.queue_limit = 1;
  spec.site_inflight = 1;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(report.outcomes.size(), 20u);
  EXPECT_EQ(report.completed + report.rejected, 20u);
  EXPECT_GT(report.rejected, 0u);
}

TEST(Serve, InflightCapBoundsConcurrency) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec = open_spec(10);
  spec.rate_qps = 1e6;
  spec.site_inflight = 2;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(report.completed, 10u);
  EXPECT_LE(report.max_inflight, 2u);
  // Reconstruct the concurrency profile from the execution intervals: at no
  // instant do more than site_inflight executions overlap.
  std::vector<std::pair<SimTime, int>> events;
  for (const ServeOutcome& outcome : report.outcomes) {
    events.emplace_back(outcome.start, +1);
    events.emplace_back(outcome.completion, -1);
  }
  std::sort(events.begin(), events.end());
  int inflight = 0;
  for (const auto& [at, delta] : events) {
    inflight += delta;
    EXPECT_LE(inflight, 2);
  }
}

TEST(Serve, SpcBeatsFifoOnMeanLatencyUnderContention) {
  // The SJF effect: with a backlog of heterogeneous queries, running the
  // predicted-cheap ones first lowers the mean latency; FIFO makes short
  // queries wait behind long ones. Predictions here are the *measured* solo
  // responses, isolating the scheduling claim from advisor accuracy.
  Rng rng(77);
  ParamConfig config;
  config.n_objects = {150, 200};
  config.n_classes = {3, 4};
  config.n_preds = {1, 3};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);

  StrategyOptions solo_options;
  solo_options.record_trace = false;
  std::vector<ServeRequest> pool;
  for (const StrategyKind kind :
       {StrategyKind::BL, StrategyKind::CA}) {  // cheap vs expensive
    ServeRequest request;
    request.query = synth.query;
    request.kind = kind;
    request.predicted_cost_s = to_seconds(
        execute_strategy(kind, *synth.federation, synth.query, solo_options)
            .response_ns);
    pool.push_back(std::move(request));
  }
  ASSERT_NE(pool[0].predicted_cost_s, pool[1].predicted_cost_s);

  const auto run_policy = [&](SchedPolicy policy) {
    ServeSpec spec;
    spec.mode = ArrivalMode::Closed;
    spec.clients = 6;
    spec.think_ns = 0;
    spec.n_queries = 18;
    spec.queue_limit = 0;
    spec.site_inflight = 1;
    spec.policy = policy;
    spec.seed = 3;
    return serve::serve(*synth.federation, pool, spec, {});
  };
  const ServeReport fifo = run_policy(SchedPolicy::Fifo);
  const ServeReport spc = run_policy(SchedPolicy::Spc);
  EXPECT_EQ(fifo.completed, 18u);
  EXPECT_EQ(spc.completed, 18u);
  EXPECT_LT(spc.mean_latency_ms(), fifo.mean_latency_ms());
}

TEST(Serve, P99GrowsWithOfferedLoad) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  StrategyOptions solo_options;
  solo_options.record_trace = false;
  const double solo_s =
      to_seconds(execute_strategy(StrategyKind::BL, *example.federation,
                                  paper::q1(), solo_options)
                     .response_ns);
  SimTime previous = 0;
  for (const double fraction : {0.3, 0.9, 1.5}) {
    ServeSpec spec = open_spec(24);
    spec.rate_qps = fraction / solo_s;
    spec.site_inflight = 1;
    const ServeReport report =
        serve::serve(*example.federation, pool, spec, {});
    EXPECT_EQ(report.completed, 24u);
    const SimTime p99 = report.latency_percentile(0.99);
    EXPECT_GE(p99, previous) << "offered load fraction " << fraction;
    previous = p99;
  }
}

TEST(Serve, PerQueryWireAccountingSumsToTheClusterTotal) {
  // Fault-free, every transfer belongs to exactly one execution: the new
  // per-env wire meters must partition the cluster's aggregate exactly.
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0},
                                       {paper::q1(), StrategyKind::CA, 3.0},
                                       {paper::q1(), StrategyKind::PL, 2.0}};
  ServeSpec spec = open_spec(9);
  spec.rate_qps = 500;
  spec.site_inflight = 3;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(report.completed, 9u);
  Bytes wire_sum = 0;
  std::uint64_t message_sum = 0;
  for (const ServeOutcome& outcome : report.outcomes) {
    EXPECT_GT(outcome.wire_bytes, 0u);
    wire_sum += outcome.wire_bytes;
    message_sum += outcome.messages;
  }
  EXPECT_EQ(wire_sum, report.bytes_transferred);
  EXPECT_EQ(message_sum, report.messages);
}

TEST(Serve, SessionsCollectSpansPerSubmission) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec = open_spec(4);
  spec.rate_qps = 1000;
  std::vector<obs::TraceSession> sessions;
  ServeOptions options;
  options.sessions = &sessions;
  const ServeReport report =
      serve::serve(*example.federation, pool, spec, options);
  ASSERT_EQ(sessions.size(), 4u);
  EXPECT_EQ(report.completed, 4u);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_FALSE(sessions[i].empty()) << i;
    for (const obs::PhaseSpan& span : sessions[i].spans()) {
      EXPECT_EQ(span.query, i);
      EXPECT_EQ(span.strategy, "BL");
    }
  }
}

TEST(Serve, MetricsRecordLatenciesAndCounts) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec = open_spec(5);
  obs::MetricsRegistry registry;
  ServeOptions options;
  options.metrics = &registry;
  const ServeReport report =
      serve::serve(*example.federation, pool, spec, options);
  EXPECT_EQ(registry.counter("serve.completed").value(), report.completed);
  EXPECT_EQ(registry.counter("serve.rejected").value(), report.rejected);
  const obs::Histogram::Snapshot snap =
      registry.histogram("serve.latency_us").snapshot();
  EXPECT_EQ(snap.count, report.completed);
  // The histogram estimate brackets the exact percentile's bucket: both lie
  // within the recorded [min, max].
  EXPECT_GE(snap.p99(), snap.min);
  EXPECT_LE(snap.p99(), snap.max);
}

TEST(Serve, FaultPlanComposesAndStillTerminates) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec = open_spec(6);
  spec.rate_qps = 100;
  fault::FaultPlan plan;
  plan.drop_probability = 0.05;
  plan.seed = 11;
  ServeOptions options;
  options.exec.faults = &plan;
  options.exec.retry.max_retries = 8;
  options.exec.degrade = fault::DegradeMode::Partial;
  const ServeReport report =
      serve::serve(*example.federation, pool, spec, options);
  EXPECT_EQ(report.completed + report.rejected, 6u);
  // Replays bit-identically: per-query fault streams derive from the plan
  // seed and the submission index, not from scheduling happenstance.
  const ServeReport again =
      serve::serve(*example.federation, pool, spec, options);
  ASSERT_EQ(report.outcomes.size(), again.outcomes.size());
  for (std::size_t i = 0; i < report.outcomes.size(); ++i)
    EXPECT_EQ(report.outcomes[i].completion, again.outcomes[i].completion);
}

TEST(Serve, EmptyPoolThrows) {
  const paper::UniversityExample example = paper::make_university();
  EXPECT_THROW((void)serve::serve(*example.federation, {}, open_spec(1), {}),
               ServeError);
}

double paper_solo_s(StrategyKind kind) {
  const paper::UniversityExample example = paper::make_university();
  StrategyOptions solo_options;
  solo_options.record_trace = false;
  return to_seconds(
      execute_strategy(kind, *example.federation, paper::q1(), solo_options)
          .response_ns);
}

/// A gold/free tenant pair over the q1 pool: gold carries 3x the weight and
/// a `gold_slo_solos`x-solo SLO, free is loose. Used by the policy tests.
std::pair<std::vector<serve::TenantSpec>, std::vector<ServeRequest>>
gold_free_setup(double gold_slo_solos, double free_slo_solos) {
  const double solo_s = paper_solo_s(StrategyKind::BL);
  serve::TenantSpec gold;
  gold.id = "gold";
  gold.weight = 3.0;
  gold.quota = 64;
  gold.slo_ns = static_cast<SimTime>(gold_slo_solos * solo_s * 1e9);
  serve::TenantSpec free_tier;
  free_tier.id = "free";
  free_tier.weight = 1.0;
  free_tier.quota = 64;
  free_tier.slo_ns = static_cast<SimTime>(free_slo_solos * solo_s * 1e9);
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  return {std::vector<serve::TenantSpec>{gold, free_tier},
          serve::tag_tenants(pool, {gold, free_tier})};
}

TEST(Tenants, TenantlessRunsReportNoTenants) {
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  const ServeReport report =
      serve::serve(*example.federation, pool, open_spec(3), {});
  EXPECT_TRUE(report.tenants.empty());
  for (const ServeOutcome& outcome : report.outcomes) {
    EXPECT_EQ(outcome.tenant, 0u);
    EXPECT_EQ(outcome.deadline, 0);
  }
}

TEST(Tenants, ReportsPartitionTheClusterTotals) {
  // Per-tenant wire/messages/counts must partition the run's aggregates
  // exactly, the same way the per-outcome sums do.
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(50.0, 50.0);
  ServeSpec spec;
  spec.mode = ArrivalMode::Closed;
  spec.clients = 4;
  spec.think_ns = 0;
  spec.n_queries = 12;
  spec.queue_limit = 0;
  spec.site_inflight = 2;
  spec.tenants = tenants;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  ASSERT_EQ(report.tenants.size(), 2u);
  Bytes wire = 0;
  std::uint64_t messages = 0;
  std::size_t submitted = 0, completed = 0, rejected = 0;
  for (const serve::TenantReport& tenant : report.tenants) {
    wire += tenant.wire_bytes;
    messages += tenant.messages;
    submitted += tenant.submitted;
    completed += tenant.completed;
    rejected += tenant.rejected;
  }
  EXPECT_EQ(wire, report.bytes_transferred);
  EXPECT_EQ(messages, report.messages);
  EXPECT_EQ(submitted, 12u);
  EXPECT_EQ(completed, report.completed);
  EXPECT_EQ(rejected, report.rejected);
  // Both tenants saw traffic (clients round-robin over tenants).
  EXPECT_GT(report.tenants[0].submitted, 0u);
  EXPECT_GT(report.tenants[1].submitted, 0u);
}

TEST(Tenants, DeadlineIsArrivalPlusSlo) {
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(5.0, 50.0);
  ServeSpec spec = open_spec(8);
  spec.rate_qps = 40;
  spec.tenants = tenants;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  for (const ServeOutcome& outcome : report.outcomes) {
    ASSERT_LT(outcome.tenant, tenants.size());
    EXPECT_EQ(outcome.deadline,
              outcome.arrival + tenants[outcome.tenant].slo_ns);
  }
}

TEST(Tenants, ReplayIsBitIdenticalUnderFaults) {
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(5.0, 50.0);
  ServeSpec spec = open_spec(10);
  spec.rate_qps = 60;
  spec.site_inflight = 2;
  spec.policy = SchedPolicy::Edf;
  spec.tenants = tenants;
  fault::FaultPlan plan;
  plan.drop_probability = 0.05;
  plan.seed = 13;
  ServeOptions options;
  options.exec.faults = &plan;
  options.exec.retry.max_retries = 8;
  options.exec.degrade = fault::DegradeMode::Partial;
  const ServeReport a = serve::serve(*example.federation, pool, spec, options);
  const ServeReport b = serve::serve(*example.federation, pool, spec, options);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].arrival, b.outcomes[i].arrival) << i;
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion) << i;
    EXPECT_EQ(a.outcomes[i].tenant, b.outcomes[i].tenant) << i;
    EXPECT_EQ(a.outcomes[i].wire_bytes, b.outcomes[i].wire_bytes) << i;
  }
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].completed, b.tenants[t].completed) << t;
    EXPECT_EQ(a.tenants[t].wire_bytes, b.tenants[t].wire_bytes) << t;
    EXPECT_EQ(a.tenants[t].deadline_misses, b.tenants[t].deadline_misses)
        << t;
  }
}

TEST(Tenants, WfqSharesTrackWeights) {
  // Closed loop with a standing backlog: WFQ's long-run served-cost share
  // per tenant converges to the weight share. The tolerance absorbs the
  // end-of-run drain (the last `clients` submissions are not reordered).
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(50.0, 50.0);
  ServeSpec spec;
  spec.mode = ArrivalMode::Closed;
  spec.clients = 8;
  spec.think_ns = 0;
  spec.n_queries = 60;
  spec.queue_limit = 0;
  spec.site_inflight = 1;
  spec.policy = SchedPolicy::Wfq;
  spec.tenants = tenants;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  ASSERT_EQ(report.completed, 60u);
  for (std::size_t t = 0; t < report.tenants.size(); ++t)
    EXPECT_NEAR(report.fairness_ratio(t), 1.0, 0.25)
        << report.tenants[t].id;
  // FIFO splits service evenly — the weighted ratios sit far from 1.
  spec.policy = SchedPolicy::Fifo;
  const ServeReport fifo = serve::serve(*example.federation, pool, spec, {});
  EXPECT_LT(fifo.fairness_ratio(0), 0.85);  // gold under-served
  EXPECT_GT(fifo.fairness_ratio(1), 1.15);  // free over-served
}

TEST(Tenants, EdfMissesFewerDeadlinesThanFifo) {
  // Gold's SLO (5x solo) is unmeetable under FIFO at 8 concurrent clients
  // (everyone's turnaround is ~8x solo), but achievable when EDF runs the
  // tightest deadlines first; free's loose SLO absorbs the wait.
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(5.0, 100.0);
  ServeSpec spec;
  spec.mode = ArrivalMode::Closed;
  spec.clients = 8;
  spec.think_ns = 0;
  spec.n_queries = 48;
  spec.queue_limit = 0;
  spec.site_inflight = 1;
  spec.tenants = tenants;
  const auto misses = [&](SchedPolicy policy) {
    spec.policy = policy;
    const ServeReport report =
        serve::serve(*example.federation, pool, spec, {});
    std::uint64_t total = 0;
    for (const serve::TenantReport& tenant : report.tenants)
      total += tenant.deadline_misses;
    return total;
  };
  const std::uint64_t fifo = misses(SchedPolicy::Fifo);
  const std::uint64_t edf = misses(SchedPolicy::Edf);
  EXPECT_GT(fifo, 0u);
  EXPECT_LT(edf, fifo);
}

TEST(Tenants, QuotaBoundsAdmission) {
  // Per-tenant quota 1 under a burst: at most one admitted-waiting
  // submission per tenant, so the queue never holds more than two, and the
  // overflow rejections land on the tenants that offered them.
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(50.0, 50.0);
  for (serve::TenantSpec& tenant : tenants) tenant.quota = 1;
  ServeSpec spec = open_spec(16);
  spec.rate_qps = 1e6;  // essentially simultaneous arrivals
  spec.site_inflight = 1;
  spec.tenants = tenants;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(report.completed + report.rejected, 16u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_LE(report.max_queue_depth, 2u);
  std::size_t rejected = 0;
  for (const serve::TenantReport& tenant : report.tenants)
    rejected += tenant.rejected;
  EXPECT_EQ(rejected, report.rejected);
}

TEST(Tenants, SpansAttributeSubmissionsToTenants) {
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, pool] = gold_free_setup(5.0, 50.0);
  ServeSpec spec = open_spec(6);
  spec.rate_qps = 100;
  spec.tenants = tenants;
  std::vector<obs::TraceSession> sessions;
  ServeOptions options;
  options.sessions = &sessions;
  const ServeReport report =
      serve::serve(*example.federation, pool, spec, options);
  ASSERT_EQ(sessions.size(), 6u);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (report.outcomes[i].rejected) continue;
    const std::string expected =
        "serve.tenant/" + tenants[report.outcomes[i].tenant].id;
    bool found = false;
    for (const obs::PhaseSpan& span : sessions[i].spans())
      if (span.phase == Phase::Serve && span.step == expected) found = true;
    EXPECT_TRUE(found) << "submission " << i << " lacks a " << expected
                       << " span";
  }
}

TEST(Tenants, AutoscaleRaisesCapUnderPressure) {
  // Open loop far past the one-slot capacity: queue-wait p95 grows while
  // the sites sit mostly idle, so the autoscaler must raise the cap. With
  // autoscale off the cap never moves.
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  const double solo_s = paper_solo_s(StrategyKind::BL);
  ServeSpec spec = open_spec(40);
  spec.rate_qps = 3.0 / solo_s;
  spec.site_inflight = 1;
  spec.autoscale = true;
  const ServeReport scaled =
      serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(scaled.completed, 40u);
  EXPECT_GT(scaled.inflight_cap_high, 1u);
  EXPECT_EQ(scaled.inflight_cap_low, 1u);
  spec.autoscale = false;
  const ServeReport fixed = serve::serve(*example.federation, pool, spec, {});
  EXPECT_EQ(fixed.inflight_cap_high, 1u);
  EXPECT_EQ(fixed.inflight_cap_low, 1u);
}

TEST(Serve, RejectedSubmissionsAreExcludedFromLatency) {
  // Satellite regression: a high-rejection run's latency figures describe
  // the work that completed. Recompute mean and p50 from the completed
  // outcomes alone and require the report to match exactly.
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec spec = open_spec(20);
  spec.rate_qps = 1e6;
  spec.queue_limit = 1;
  spec.site_inflight = 1;
  const ServeReport report = serve::serve(*example.federation, pool, spec, {});
  ASSERT_GT(report.rejected, 5u);  // the run really is rejection-heavy
  std::vector<SimTime> latencies;
  double sum_ms = 0;
  for (const ServeOutcome& outcome : report.outcomes) {
    if (outcome.rejected) continue;
    latencies.push_back(outcome.latency());
    sum_ms += to_milliseconds(outcome.latency());
  }
  ASSERT_FALSE(latencies.empty());
  std::sort(latencies.begin(), latencies.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.5 * static_cast<double>(latencies.size())));
  EXPECT_EQ(report.latency_percentile(0.5), latencies[rank - 1]);
  EXPECT_DOUBLE_EQ(report.mean_latency_ms(),
                   sum_ms / static_cast<double>(latencies.size()));
  // Folding the rejected zeros in WOULD move the mean — the exclusion is
  // load-bearing, not vacuous.
  EXPECT_NE(sum_ms / static_cast<double>(report.outcomes.size()),
            report.mean_latency_ms());
}

TEST(Serve, ValidatesHandBuiltSpecs) {
  // The parser hard-errors on these; hand-built specs must hit the same
  // wall inside serve() itself.
  const paper::UniversityExample example = paper::make_university();
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0}};
  const auto expect_throws = [&](ServeSpec spec) {
    EXPECT_THROW((void)serve::serve(*example.federation, pool, spec, {}),
                 ServeError);
  };
  ServeSpec spec = open_spec(4);
  spec.n_queries = 0;
  expect_throws(spec);
  spec = open_spec(4);
  spec.rate_qps = 0;
  expect_throws(spec);
  spec = open_spec(4);
  spec.mode = ArrivalMode::Closed;
  spec.clients = 0;
  expect_throws(spec);
  spec = open_spec(4);
  spec.mode = ArrivalMode::Closed;
  spec.clients = 2;
  spec.think_ns = -1;
  expect_throws(spec);
  spec = open_spec(4);
  spec.autoscale = true;
  spec.site_inflight = 0;  // autoscale needs a finite base cap
  expect_throws(spec);
  spec = open_spec(4);
  spec.tenants.resize(2);
  spec.tenants[0].id = "dup";
  spec.tenants[1].id = "dup";
  expect_throws(spec);
  spec = open_spec(4);
  spec.tenants.resize(1);
  spec.tenants[0].id = "bad id";  // spaces not in the tenant-id alphabet
  expect_throws(spec);
  spec = open_spec(4);
  spec.tenants.resize(1);
  spec.tenants[0].id = "t";
  spec.tenants[0].weight = 0;
  expect_throws(spec);
}

TEST(Serve, TenantTagsMustAgreeWithTheSpec) {
  const paper::UniversityExample example = paper::make_university();
  auto [tenants, tagged] = gold_free_setup(5.0, 50.0);
  const std::vector<ServeRequest> untagged{
      {paper::q1(), StrategyKind::BL, 1.0}};
  ServeSpec with_tenants = open_spec(4);
  with_tenants.tenants = tenants;
  // Untagged pool under a tenant spec; tagged pool under a tenant-less one.
  EXPECT_THROW(
      (void)serve::serve(*example.federation, untagged, with_tenants, {}),
      ServeError);
  EXPECT_THROW(
      (void)serve::serve(*example.federation, tagged, open_spec(4), {}),
      ServeError);
  // A tenant owning no pool entry is a config error, not silent starvation.
  std::vector<ServeRequest> partial = untagged;
  partial[0].tenant = "gold";
  EXPECT_THROW(
      (void)serve::serve(*example.federation, partial, with_tenants, {}),
      ServeError);
}

TEST(Planner, TagTenantsReplicatesThePool) {
  const std::vector<ServeRequest> pool{{paper::q1(), StrategyKind::BL, 1.0},
                                       {paper::q1(), StrategyKind::CA, 3.0}};
  std::vector<serve::TenantSpec> tenants(2);
  tenants[0].id = "a";
  tenants[1].id = "b";
  const std::vector<ServeRequest> tagged = serve::tag_tenants(pool, tenants);
  ASSERT_EQ(tagged.size(), 4u);
  for (std::size_t t = 0; t < 2; ++t)
    for (std::size_t p = 0; p < 2; ++p) {
      const ServeRequest& entry = tagged[t * 2 + p];
      EXPECT_EQ(entry.tenant, tenants[t].id);
      EXPECT_EQ(entry.kind, pool[p].kind);
      EXPECT_EQ(entry.predicted_cost_s, pool[p].predicted_cost_s);
    }
  EXPECT_THROW((void)serve::tag_tenants(pool, {}), ServeError);
  EXPECT_THROW((void)serve::tag_tenants(tagged, tenants), ServeError);
}

TEST(Arrivals, TenantPoissonMergesIndependentStreams) {
  std::vector<workload::TenantStream> streams(2);
  streams[0].rate_qps = 50;
  streams[0].pool = {0, 1};
  streams[1].rate_qps = 100;
  streams[1].pool = {2};
  const auto merged = workload::tenant_poisson_arrivals(streams, 60, 42);
  const auto again = workload::tenant_poisson_arrivals(streams, 60, 42);
  EXPECT_EQ(merged, again);
  ASSERT_EQ(merged.size(), 60u);
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_GE(merged[i].at, merged[i - 1].at);
  for (const workload::Arrival& arrival : merged)
    EXPECT_LT(arrival.pool_index, 3u);
  // Stream independence: stream 0's schedule inside the merge is a prefix
  // of its solo schedule — re-rating tenant 1 cannot perturb tenant 0.
  const auto solo = workload::tenant_poisson_arrivals({streams[0]}, 60, 42);
  std::vector<workload::Arrival> from_zero;
  for (const workload::Arrival& arrival : merged)
    if (arrival.pool_index < 2) from_zero.push_back(arrival);
  ASSERT_LE(from_zero.size(), solo.size());
  for (std::size_t i = 0; i < from_zero.size(); ++i)
    EXPECT_EQ(from_zero[i], solo[i]) << i;
}

TEST(Planner, AdvisorPlansEveryPoolEntry) {
  const paper::UniversityExample example = paper::make_university();
  Rng rng(5);
  const std::vector<GlobalQuery> queries =
      workload::derive_query_pool(paper::q1(), 4, rng);
  const std::vector<ServeRequest> pool =
      serve::plan_pool(*example.federation, queries);
  ASSERT_EQ(pool.size(), 4u);
  for (const ServeRequest& request : pool) {
    EXPECT_GT(request.predicted_cost_s, 0.0);
    // The planner only recommends paper strategies (the advisor estimates
    // CA/BL/PL).
    EXPECT_TRUE(request.kind == StrategyKind::CA ||
                request.kind == StrategyKind::BL ||
                request.kind == StrategyKind::PL);
  }
  // Planned pools serve correctly end to end.
  const ServeReport report =
      serve::serve(*example.federation, pool, open_spec(6), {});
  EXPECT_EQ(report.completed, 6u);
}

TEST(Arrivals, PoissonScheduleIsSortedDeterministicAndRateScaled) {
  Rng a(42), b(42);
  const auto one = workload::poisson_arrivals(100, 200, 3, a);
  const auto two = workload::poisson_arrivals(100, 200, 3, b);
  EXPECT_EQ(one, two);
  ASSERT_EQ(one.size(), 200u);
  for (std::size_t i = 1; i < one.size(); ++i)
    EXPECT_GE(one[i].at, one[i - 1].at);
  for (const workload::Arrival& arrival : one)
    EXPECT_LT(arrival.pool_index, 3u);
  // Mean inter-arrival ~ 1/rate: at rate 100/s over 200 draws the last
  // arrival lands around 2 s; a factor-3 band catches regressions without
  // flaking.
  EXPECT_GT(one.back().at, 600'000'000);    // > 0.6 s
  EXPECT_LT(one.back().at, 6'000'000'000);  // < 6 s
}

TEST(Arrivals, QueryPoolKeepsBaseFirstAndVariantsValid) {
  Rng rng(9);
  const GlobalQuery base = paper::q1();
  const auto pool = workload::derive_query_pool(base, 5, rng);
  ASSERT_EQ(pool.size(), 5u);
  EXPECT_EQ(pool[0].range_class, base.range_class);
  EXPECT_EQ(pool[0].targets, base.targets);
  EXPECT_EQ(pool[0].predicates, base.predicates);
  const paper::UniversityExample example = paper::make_university();
  for (const GlobalQuery& query : pool) {
    EXPECT_EQ(query.range_class, base.range_class);
    EXPECT_FALSE(query.targets.empty());
    // Every variant stays answerable — and every strategy agrees on it.
    const QueryResult expected = reference_answer(*example.federation, query);
    StrategyOptions options;
    options.record_trace = false;
    const StrategyReport report =
        execute_strategy(StrategyKind::BL, *example.federation, query, options);
    EXPECT_EQ(report.result, expected);
  }
}

}  // namespace
}  // namespace isomer
