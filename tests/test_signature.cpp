// Object signatures: superimposed coding, screening semantics, and the
// no-false-negative property that keeps BLS/PLS answers exact.
#include <gtest/gtest.h>

#include "isomer/federation/signature.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

TEST(Signature, SetAndContains) {
  Signature sig;
  EXPECT_TRUE(sig.empty());
  sig.set(0);
  sig.set(255);
  sig.set(100);
  EXPECT_FALSE(sig.empty());
  Signature mask;
  mask.set(0);
  mask.set(100);
  EXPECT_TRUE(sig.contains(mask));
  mask.set(7);
  EXPECT_FALSE(sig.contains(mask));
}

TEST(Signature, MasksAreDeterministicAndAttributeSpecific) {
  const Signature a1 = SignatureIndex::value_mask("price", Value(10));
  const Signature a2 = SignatureIndex::value_mask("price", Value(10));
  const Signature b = SignatureIndex::value_mask("stock", Value(10));
  EXPECT_TRUE(a1.contains(a2));
  EXPECT_TRUE(a2.contains(a1));
  EXPECT_FALSE(a1.contains(b));  // overwhelmingly likely with 3 hashes
}

TEST(Signature, NullMaskDistinctFromValueMasks) {
  const Signature null_mask = SignatureIndex::null_mask("price");
  const Signature value_mask = SignatureIndex::value_mask("price", Value(0));
  EXPECT_FALSE(null_mask.contains(value_mask));
}

class SignatureIndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    ParamConfig config;
    config.n_objects = {80, 120};
    const SampleParams sample = draw_sample(config, rng);
    synth_ = materialize_sample(sample);
    index_ = std::make_unique<SignatureIndex>(
        SignatureIndex::build(*synth_.federation));
  }
  SynthFederation synth_;
  std::unique_ptr<SignatureIndex> index_;
};

TEST_F(SignatureIndexFixture, IndexesEveryConstituentObject) {
  std::size_t objects = 0;
  for (const DbId db : synth_.federation->db_ids())
    objects += synth_.federation->db(db).object_count();
  EXPECT_EQ(index_->size(), objects);
}

TEST_F(SignatureIndexFixture, NeverScreensOutAMatchOrANull) {
  // The soundness property: screen() may only say CannotSatisfy when the
  // object's attribute value provably differs from the literal — an actual
  // match or a null must always pass. Checked exhaustively on every object
  // and every predicate attribute of the generated federation.
  const Federation& fed = *synth_.federation;
  for (const DbId db_id : fed.db_ids()) {
    const ComponentDatabase& db = fed.db(db_id);
    for (const GlobalClass& cls : fed.schema().classes()) {
      const auto constituent = cls.constituent_in(db_id);
      if (!constituent) continue;
      const ClassDef& local =
          db.schema().cls(cls.constituents()[*constituent].local_class);
      for (std::size_t a = 0; a < cls.def().attribute_count(); ++a) {
        if (is_complex(cls.def().attribute(a).type)) continue;
        const auto& local_name = cls.local_attr(*constituent, a);
        const auto index =
            local_name ? local.find_attribute(*local_name) : std::nullopt;
        for (const Object& obj : db.extent(local.name()).objects()) {
          const Value actual = index ? obj.value(*index) : Value::null();
          if (actual.is_null()) {
            // Null (or missing) values must never be screened out against
            // any literal: Unknown is not False.
            EXPECT_EQ(index_->screen(obj.id(), cls.def().attribute(a).name,
                                     Value(0)),
                      SignatureIndex::Screen::MaybeSatisfies);
          } else {
            EXPECT_EQ(index_->screen(obj.id(), cls.def().attribute(a).name,
                                     actual),
                      SignatureIndex::Screen::MaybeSatisfies);
          }
        }
      }
    }
  }
}

TEST_F(SignatureIndexFixture, ScreensOutMostMismatches) {
  // Effectiveness: for a literal no object carries, most objects screen out
  // (false positives are possible but rare with 256 bits / 3 hashes).
  const Federation& fed = *synth_.federation;
  const ComponentDatabase& db = fed.db(DbId{1});
  std::size_t total = 0, screened = 0;
  for (const Object& obj : db.extent("C1").objects()) {
    ++total;
    if (index_->screen(obj.id(), "id", Value(999'999)) ==
        SignatureIndex::Screen::CannotSatisfy)
      ++screened;
  }
  EXPECT_GT(static_cast<double>(screened) / static_cast<double>(total), 0.9);
}

TEST_F(SignatureIndexFixture, UnindexedObjectsPass) {
  EXPECT_EQ(index_->screen(LOid{DbId{9}, 1}, "id", Value(1)),
            SignatureIndex::Screen::MaybeSatisfies);
}

TEST_F(SignatureIndexFixture, ScreeningIsMetered) {
  AccessMeter meter;
  (void)index_->screen(LOid{DbId{1}, 1}, "id", Value(1), &meter);
  EXPECT_EQ(meter.comparisons, 1u);
}

}  // namespace
}  // namespace isomer
