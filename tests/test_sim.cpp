// The discrete-event engine: scheduling, FIFO resources, barriers, the
// cluster's network models, cost parameters, and trace bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "isomer/sim/barrier.hpp"
#include "isomer/sim/cluster.hpp"
#include "isomer/sim/trace.hpp"

namespace isomer {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CallbacksMayScheduleMore) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.schedule_after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 6);
}

TEST(Simulator, RejectsPastAndNull) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), SimError);
  EXPECT_THROW(sim.schedule_at(20, nullptr), ContractViolation);
}

TEST(Resource, FifoQueueing) {
  Simulator sim;
  Resource r(sim, "disk");
  std::vector<SimTime> completions;
  sim.schedule_at(0, [&] {
    r.use(10, [&] { completions.push_back(sim.now()); });
    r.use(5, [&] { completions.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{10, 15}));
  EXPECT_EQ(r.busy(), 15);
  EXPECT_EQ(r.requests(), 2u);
}

TEST(Resource, IdleGapsDoNotCountAsBusy) {
  Simulator sim;
  Resource r(sim, "disk");
  sim.schedule_at(0, [&] { r.use(10, [] {}); });
  sim.schedule_at(100, [&] { r.use(10, [] {}); });
  sim.run();
  EXPECT_EQ(r.busy(), 20);
  EXPECT_EQ(sim.now(), 110);
}

TEST(Resource, ZeroDurationCompletesInstantly) {
  Simulator sim;
  Resource r(sim, "cpu");
  SimTime done = -1;
  sim.schedule_at(7, [&] {
    r.use(0, [&] { done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(done, 7);
  EXPECT_THROW(r.use(-1, [] {}), SimError);
}

TEST(Barrier, FiresAfterAllArrivals) {
  Simulator sim;
  bool fired = false;
  auto barrier = Barrier::create(3, [&] { fired = true; });
  barrier->arrive();
  barrier->arrive();
  EXPECT_FALSE(fired);
  EXPECT_EQ(barrier->pending(), 1u);
  barrier->arrive();
  EXPECT_TRUE(fired);
  EXPECT_THROW(barrier->arrive(), ContractViolation);
}

TEST(Barrier, ZeroExpectedFiresImmediately) {
  bool fired = false;
  (void)Barrier::create(0, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(Barrier, ArrivalCallbackKeepsBarrierAlive) {
  Simulator sim;
  bool fired = false;
  {
    auto barrier = Barrier::create(2, [&] { fired = true; });
    sim.schedule_at(1, barrier->arrival());
    sim.schedule_at(2, barrier->arrival());
  }  // local shared_ptr dropped; callbacks hold it
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Barrier, FiresExactlyOnce) {
  int fired = 0;
  auto barrier = Barrier::create(1, [&] { ++fired; });
  EXPECT_EQ(barrier->pending(), 1u);
  barrier->arrive();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(barrier->pending(), 0u);
  // Nothing re-fires afterwards: the continuation was consumed, and further
  // arrivals violate the contract instead of double-completing.
  EXPECT_THROW(barrier->arrive(), ContractViolation);
  EXPECT_EQ(fired, 1);
}

TEST(Barrier, OverArrivalThroughScheduledCallbacksIsCaught) {
  // Same contract as calling arrive() directly, but through the arrival()
  // closures the strategies actually schedule: one callback too many makes
  // the simulation run surface the violation instead of silently firing a
  // second time.
  Simulator sim;
  int fired = 0;
  {
    auto barrier = Barrier::create(2, [&] { ++fired; });
    sim.schedule_at(1, barrier->arrival());
    sim.schedule_at(2, barrier->arrival());
    sim.schedule_at(3, barrier->arrival());  // one more than expected
  }
  EXPECT_THROW(sim.run(), ContractViolation);
  EXPECT_EQ(fired, 1);
}

TEST(Barrier, CompletionReleasesTheCallbackState) {
  // The continuation (and anything it captured) is dropped at fire time, so
  // a fired barrier kept alive by stray handles doesn't pin resources.
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  auto barrier = Barrier::create(1, [held = std::move(token)] {});
  EXPECT_FALSE(watch.expired());  // captured by the pending continuation
  barrier->arrive();
  EXPECT_TRUE(watch.expired());  // consumed and destroyed on fire
  EXPECT_EQ(barrier->pending(), 0u);
}

TEST(Barrier, ZeroExpectedReportsNothingPending) {
  bool fired = false;
  auto barrier = Barrier::create(0, [&] { fired = true; });
  EXPECT_TRUE(fired);
  EXPECT_EQ(barrier->pending(), 0u);
  EXPECT_THROW(barrier->arrive(), ContractViolation);
}

// --- cost params ---

TEST(CostParams, Table1Rates) {
  const CostParams costs;
  EXPECT_EQ(costs.disk_time(1), 15'000);
  EXPECT_EQ(costs.net_time(2), 16'000);
  EXPECT_EQ(costs.cpu_time(std::uint64_t{4}), 2'000);
}

TEST(CostParams, StoredObjectBytes) {
  const CostParams costs;
  ClassDef cls("C");
  cls.add_attribute("a", PrimType::Int)
      .add_attribute("b", PrimType::String)
      .add_attribute("r", ComplexType{"C"})
      .add_attribute("rs", ComplexType{"C", true});
  // LOid 16 + 2*32 prim + 16 ref + 2*16 multi-ref
  EXPECT_EQ(costs.stored_object_bytes(cls), 16u + 64u + 16u + 32u);
}

TEST(CostParams, ProjectedAndMessageSizes) {
  const CostParams costs;
  EXPECT_EQ(costs.projected_object_bytes(2, 1), 16u + 64u + 16u);
  EXPECT_EQ(costs.request_bytes(3), 32u + 3u * 64u);
  EXPECT_EQ(costs.check_task_bytes(), 16u + 16u + 64u);
  EXPECT_EQ(costs.verdict_bytes(), 24u);
}

TEST(CostParams, DiskBytesFromMeter) {
  const CostParams costs;
  AccessMeter meter;
  meter.objects_scanned = 2;
  meter.objects_fetched = 1;
  meter.prim_slots = 5;
  meter.ref_slots = 3;
  EXPECT_EQ(costs.disk_bytes(meter), 3u * 16u + 5u * 32u + 3u * 16u);
}

TEST(CostParams, CpuTimeIncludesProbes) {
  const CostParams costs;
  AccessMeter meter;
  meter.comparisons = 3;
  meter.table_probes = 2;
  EXPECT_EQ(costs.cpu_time(meter), 5 * 500);
}

// --- cluster / network ---

TEST(Cluster, SharedBusSerializesTransfers) {
  Simulator sim;
  const CostParams costs;
  Cluster cluster(sim, costs, 2, NetworkTopology::SharedBus);
  std::vector<SimTime> done;
  sim.schedule_at(0, [&] {
    cluster.transfer(1, 0, 100, [&] { done.push_back(sim.now()); });
    cluster.transfer(2, 0, 100, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  const SimTime t = costs.net_time(100);
  EXPECT_EQ(done, (std::vector<SimTime>{t, 2 * t}));
  EXPECT_EQ(cluster.network_busy(), 2 * t);
  EXPECT_EQ(cluster.bytes_transferred(), 200u);
  EXPECT_EQ(cluster.messages(), 2u);
}

TEST(Cluster, PointToPointRunsDisjointLinksInParallel) {
  Simulator sim;
  const CostParams costs;
  Cluster cluster(sim, costs, 2, NetworkTopology::PointToPoint);
  std::vector<SimTime> done;
  sim.schedule_at(0, [&] {
    cluster.transfer(1, 0, 100, [&] { done.push_back(sim.now()); });
    cluster.transfer(2, 0, 100, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  const SimTime t = costs.net_time(100);
  EXPECT_EQ(done, (std::vector<SimTime>{t, t}));
  EXPECT_EQ(cluster.network_busy(), 2 * t) << "busy sums across links";
}

TEST(Cluster, ContentionlessIsPureLatency) {
  Simulator sim;
  const CostParams costs;
  Cluster cluster(sim, costs, 2, NetworkTopology::Contentionless);
  std::vector<SimTime> done;
  sim.schedule_at(0, [&] {
    cluster.transfer(1, 0, 100, [&] { done.push_back(sim.now()); });
    cluster.transfer(2, 0, 100, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  const SimTime t = costs.net_time(100);
  EXPECT_EQ(done, (std::vector<SimTime>{t, t}));
}

TEST(Cluster, CollisionBusInflatesUnderBacklog) {
  Simulator sim;
  CostParams costs;
  costs.collision_alpha = 1.0;
  Cluster cluster(sim, costs, 2, NetworkTopology::CollisionBus);
  std::vector<SimTime> done;
  sim.schedule_at(0, [&] {
    cluster.transfer(1, 0, 100, [&] { done.push_back(sim.now()); });
    // Enqueued while one transfer pending: takes (1 + 1.0*1) * nominal.
    cluster.transfer(2, 0, 100, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  const SimTime t = costs.net_time(100);
  EXPECT_EQ(done, (std::vector<SimTime>{t, t + 2 * t}));
  EXPECT_GT(cluster.network_busy(), 2 * t) << "collisions burn bandwidth";
}

TEST(Cluster, TransferContracts) {
  Simulator sim;
  Cluster cluster(sim, CostParams{}, 2);
  EXPECT_THROW(cluster.transfer(1, 1, 10, [] {}), ContractViolation);
  EXPECT_THROW(cluster.transfer(1, 9, 10, [] {}), ContractViolation);
  EXPECT_THROW((void)cluster.site(5), ContractViolation);
}

TEST(Cluster, SiteNaming) {
  Simulator sim;
  Cluster cluster(sim, CostParams{}, 2);
  EXPECT_EQ(cluster.global().name(), "global");
  EXPECT_EQ(cluster.site(1).name(), "DB1");
  EXPECT_EQ(cluster.component_count(), 2u);
}

// --- trace ---

TEST(Trace, PhaseOrderCollapsesByFirstStart) {
  ExecutionTrace trace;
  trace.record("DB1", "eval", Phase::P, 10, 20);
  trace.record("DB1", "lookup", Phase::O, 20, 25);
  trace.record("DB2", "eval", Phase::P, 12, 22);
  trace.record("global", "certify", Phase::I, 30, 35);
  trace.record("x", "ship", Phase::Transfer, 0, 5);  // ignored
  EXPECT_EQ(trace.phase_order(),
            (std::vector<Phase>{Phase::P, Phase::O, Phase::I}));
  EXPECT_EQ(trace.phase_order(std::string("DB2")),
            (std::vector<Phase>{Phase::P}));
}

TEST(Trace, FirstStartLastEnd) {
  ExecutionTrace trace;
  trace.record("a", "s1", Phase::O, 5, 9);
  trace.record("b", "s2", Phase::O, 3, 7);
  EXPECT_EQ(trace.first_start(Phase::O), 3);
  EXPECT_EQ(trace.last_end(Phase::O), 9);
  EXPECT_EQ(trace.first_start(Phase::I), std::nullopt);
}

TEST(Trace, TimeConversions) {
  EXPECT_EQ(microseconds(3), 3000);
  EXPECT_DOUBLE_EQ(to_milliseconds(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(2'000'000'000), 2.0);
}

}  // namespace
}  // namespace isomer
