// Component databases: insertion, typing, lookups, metering, buffer pool.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/store/database.hpp"

namespace isomer {
namespace {

ComponentDatabase make_db() {
  ComponentSchema schema(DbId{1}, "DB1");
  schema.add_class("Department").add_attribute("name", PrimType::String);
  schema.add_class("Teacher")
      .add_attribute("name", PrimType::String)
      .add_attribute("salary", PrimType::Real)
      .add_attribute("department", ComplexType{"Department"})
      .add_attribute("mentees", ComplexType{"Teacher", true});
  return ComponentDatabase(std::move(schema));
}

TEST(Store, InsertAssignsFreshLOids) {
  ComponentDatabase db = make_db();
  const LOid a = db.insert("Department", {{"name", "CS"}});
  const LOid b = db.insert("Department", {{"name", "EE"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a.db, DbId{1});
  EXPECT_EQ(db.extent("Department").size(), 2u);
  EXPECT_EQ(db.object_count(), 2u);
}

TEST(Store, UnsetAttributesAreNull) {
  ComponentDatabase db = make_db();
  const LOid t = db.insert("Teacher", {{"name", "Ann"}});
  const Object* obj = db.fetch(t);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value(0), Value("Ann"));
  EXPECT_TRUE(obj->value(1).is_null());
  EXPECT_TRUE(obj->value(2).is_null());
}

TEST(Store, TypeChecking) {
  ComponentDatabase db = make_db();
  EXPECT_THROW(db.insert("Teacher", {{"name", 42}}), QueryError);
  EXPECT_THROW(db.insert("Teacher", {{"salary", "lots"}}), QueryError);
  EXPECT_THROW(db.insert("Teacher", {{"department", Value(1)}}), QueryError);
  // Ints are storable into real attributes.
  EXPECT_NO_THROW(db.insert("Teacher", {{"salary", 100}}));
  // Nulls are storable everywhere.
  EXPECT_NO_THROW(db.insert("Teacher", {{"name", Value::null()}}));
}

TEST(Store, MultiValuedTyping) {
  ComponentDatabase db = make_db();
  const LOid a = db.insert("Teacher", {{"name", "A"}});
  EXPECT_NO_THROW(
      db.insert("Teacher", {{"mentees", LocalRefSet{{a}}}}));
  EXPECT_THROW(
      db.insert("Teacher", {{"mentees", LocalRef{a}}}), QueryError)
      << "single ref not storable into a multi-valued attribute";
}

TEST(Store, UnknownClassAndAttribute) {
  ComponentDatabase db = make_db();
  EXPECT_THROW(db.insert("Nope", {}), SchemaError);
  EXPECT_THROW(db.insert("Teacher", {{"nope", 1}}), QueryError);
  EXPECT_THROW((void)db.extent("Nope"), SchemaError);
  EXPECT_FALSE(db.has_extent("Nope"));
  EXPECT_TRUE(db.has_extent("Teacher"));
}

TEST(Store, SetAttribute) {
  ComponentDatabase db = make_db();
  const LOid t = db.insert("Teacher", {{"name", "Ann"}});
  db.set_attribute(t, "salary", 12.5);
  EXPECT_EQ(db.fetch(t)->value(1), Value(12.5));
  EXPECT_THROW(db.set_attribute(t, "nope", 1), QueryError);
  EXPECT_THROW(db.set_attribute(LOid{DbId{1}, 999}, "name", "x"),
               FederationError);
}

TEST(Store, ClassOf) {
  ComponentDatabase db = make_db();
  const LOid t = db.insert("Teacher", {});
  EXPECT_EQ(db.class_of(t), "Teacher");
  EXPECT_THROW((void)db.class_of(LOid{DbId{1}, 999}), FederationError);
}

TEST(Store, FetchMetersSlots) {
  ComponentDatabase db = make_db();
  const LOid t = db.insert("Teacher", {{"name", "Ann"}});
  AccessMeter meter;
  ASSERT_NE(db.fetch(t, &meter), nullptr);
  EXPECT_EQ(meter.objects_fetched, 1u);
  EXPECT_EQ(meter.prim_slots, 2u);  // name, salary
  EXPECT_EQ(meter.ref_slots, 2u);   // department, mentees
}

TEST(Store, FetchMissReturnsNullAndChargesNothing) {
  ComponentDatabase db = make_db();
  AccessMeter meter;
  EXPECT_EQ(db.fetch(LOid{DbId{1}, 999}, &meter), nullptr);
  EXPECT_EQ(meter, AccessMeter{});
}

TEST(Store, ScanMetersWholeExtent) {
  ComponentDatabase db = make_db();
  db.insert("Department", {{"name", "CS"}});
  db.insert("Department", {{"name", "EE"}});
  AccessMeter meter;
  const auto& objects = db.scan("Department", &meter);
  EXPECT_EQ(objects.size(), 2u);
  EXPECT_EQ(meter.objects_scanned, 2u);
  EXPECT_EQ(meter.prim_slots, 2u);
  EXPECT_EQ(meter.ref_slots, 0u);
}

TEST(Store, DerefFollowsLocalRefsOnly) {
  ComponentDatabase db = make_db();
  const LOid d = db.insert("Department", {{"name", "CS"}});
  AccessMeter meter;
  EXPECT_NE(db.deref(Value(LocalRef{d}), &meter), nullptr);
  EXPECT_EQ(meter.objects_fetched, 1u);
  EXPECT_EQ(db.deref(Value(42), &meter), nullptr);
  EXPECT_EQ(db.deref(Value::null(), &meter), nullptr);
  EXPECT_EQ(db.deref(Value(GlobalRef{GOid{1}}), &meter), nullptr);
}

TEST(Store, FetchCacheSuppressesRepeatCharges) {
  ComponentDatabase db = make_db();
  const LOid t = db.insert("Teacher", {{"name", "Ann"}});
  AccessMeter meter;
  FetchCache cache;
  (void)db.fetch(t, &meter, &cache);
  (void)db.fetch(t, &meter, &cache);
  (void)db.fetch(t, &meter, &cache);
  EXPECT_EQ(meter.objects_fetched, 1u) << "repeat fetches hit the pool";
}

TEST(Store, ScanPopulatesFetchCache) {
  ComponentDatabase db = make_db();
  const LOid d = db.insert("Department", {{"name", "CS"}});
  AccessMeter meter;
  FetchCache cache;
  (void)db.scan("Department", &meter, &cache);
  const auto scanned = meter;
  (void)db.fetch(d, &meter, &cache);
  EXPECT_EQ(meter, scanned) << "scanned objects are already buffered";
}

TEST(Store, MeterAddition) {
  AccessMeter a, b;
  a.objects_scanned = 1;
  a.comparisons = 2;
  b.objects_fetched = 3;
  b.table_probes = 4;
  b.prim_slots = 5;
  a += b;
  EXPECT_EQ(a.objects_scanned, 1u);
  EXPECT_EQ(a.objects_fetched, 3u);
  EXPECT_EQ(a.comparisons, 2u);
  EXPECT_EQ(a.table_probes, 4u);
  EXPECT_EQ(a.prim_slots, 5u);
}

}  // namespace
}  // namespace isomer
