// The load-bearing property: CA, BL, PL (and the signature variants) return
// identical answers on every consistent federation — they differ only in
// where and when the work happens. Exercised over randomized Table-2
// workloads at reduced scale.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

ParamConfig small_config(std::size_t n_db) {
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {30, 60};  // scaled down; structure unchanged
  return config;
}

class StrategyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyEquivalence, AllStrategiesAgreeOnRandomWorkloads) {
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const SampleParams sample = draw_sample(small_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);

  ASSERT_TRUE(synth.federation->check_consistency().empty());

  const QueryResult expected =
      reference_answer(*synth.federation, synth.query);
  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query);
    EXPECT_EQ(report.result, expected)
        << to_string(kind) << " diverged on seed " << GetParam();
    EXPECT_GE(report.total_ns, report.response_ns) << to_string(kind);
    EXPECT_GT(report.response_ns, 0) << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(StrategyDeterminism, RepeatedRunsAreBitIdentical) {
  Rng rng(7);
  const SampleParams sample = draw_sample(small_config(3), rng);
  const SynthFederation synth = materialize_sample(sample);
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport a =
        execute_strategy(kind, *synth.federation, synth.query);
    const StrategyReport b =
        execute_strategy(kind, *synth.federation, synth.query);
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.response_ns, b.response_ns) << to_string(kind);
    EXPECT_EQ(a.total_ns, b.total_ns) << to_string(kind);
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << to_string(kind);
  }
}

TEST(StrategySignatures, SignatureVariantsNeverShipMoreBytes) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const SampleParams sample = draw_sample(small_config(3), rng);
    const SynthFederation synth = materialize_sample(sample);
    const auto bl = execute_strategy(StrategyKind::BL, *synth.federation,
                                     synth.query);
    const auto bls = execute_strategy(StrategyKind::BLS, *synth.federation,
                                      synth.query);
    EXPECT_LE(bls.bytes_transferred, bl.bytes_transferred);
    EXPECT_EQ(bls.result, bl.result);
  }
}

}  // namespace
}  // namespace isomer
