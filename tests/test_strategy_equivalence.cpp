// The load-bearing property: CA, BL, PL (and the signature variants) return
// identical answers on every consistent federation — they differ only in
// where and when the work happens. Exercised over randomized Table-2
// workloads at reduced scale.
#include <gtest/gtest.h>

#include "isomer/core/cert_cache.hpp"
#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

ParamConfig small_config(std::size_t n_db) {
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {30, 60};  // scaled down; structure unchanged
  return config;
}

class StrategyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyEquivalence, AllStrategiesAgreeOnRandomWorkloads) {
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const SampleParams sample = draw_sample(small_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);

  ASSERT_TRUE(synth.federation->check_consistency().empty());

  const QueryResult expected =
      reference_answer(*synth.federation, synth.query);
  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query);
    EXPECT_EQ(report.result, expected)
        << to_string(kind) << " diverged on seed " << GetParam();
    EXPECT_GE(report.total_ns, report.response_ns) << to_string(kind);
    EXPECT_GT(report.response_ns, 0) << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

class BatchedStrategyEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedStrategyEquivalence, BatchingNeverChangesAnswers) {
  // Shipment batching (ShipmentBatcher) reshapes the wire — same-instant
  // shipments coalesce into frames, check requests degrade to GOid
  // semijoins — but the answer must stay exactly the reference one, and a
  // frame always replaces >= 1 message, so the message count can only drop.
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const SampleParams sample = draw_sample(small_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);
  ASSERT_TRUE(synth.federation->check_consistency().empty());

  const QueryResult expected =
      reference_answer(*synth.federation, synth.query);
  StrategyOptions batched;
  batched.batch.enabled = true;
  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport plain =
        execute_strategy(kind, *synth.federation, synth.query);
    const StrategyReport framed =
        execute_strategy(kind, *synth.federation, synth.query, batched);
    EXPECT_EQ(framed.result, expected)
        << to_string(kind) << " diverged batched on seed " << GetParam();
    EXPECT_LE(framed.messages, plain.messages) << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedStrategyEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(BatchedStrategies, RecordCapStillAgrees) {
  // max_records forces mid-instant synchronous flushes (and leaves the
  // originally scheduled flush to no-op); the answers must not move.
  Rng rng(23);
  StrategyOptions batched;
  batched.batch.enabled = true;
  batched.batch.max_records = 2;
  for (int i = 0; i < 10; ++i) {
    const SampleParams sample = draw_sample(small_config(3), rng);
    const SynthFederation synth = materialize_sample(sample);
    const QueryResult expected =
        reference_answer(*synth.federation, synth.query);
    for (const StrategyKind kind : kPaperStrategies) {
      const StrategyReport framed =
          execute_strategy(kind, *synth.federation, synth.query, batched);
      EXPECT_EQ(framed.result, expected)
          << to_string(kind) << " diverged with max_records=2 on trial " << i;
    }
  }
}

TEST(BatchedStrategies, LocalizedStrategiesShipNoMoreBytesInAggregate) {
  // Semijoin requests shrink every check task from check_task_bytes to a
  // GOid + index, and frame headers replace per-message headers. A single
  // task-free trial can pay a few header bytes net, so the guarantee — like
  // the paper's — is about workloads, not corner trials: summed over random
  // workloads BL and PL ship no more batched than plain.
  Rng rng(11);
  StrategyOptions batched;
  batched.batch.enabled = true;
  Bytes plain_total = 0, framed_total = 0;
  for (int i = 0; i < 10; ++i) {
    const SampleParams sample = draw_sample(small_config(4), rng);
    const SynthFederation synth = materialize_sample(sample);
    for (const StrategyKind kind : {StrategyKind::BL, StrategyKind::PL}) {
      const StrategyReport plain =
          execute_strategy(kind, *synth.federation, synth.query);
      const StrategyReport framed =
          execute_strategy(kind, *synth.federation, synth.query, batched);
      EXPECT_EQ(framed.result, plain.result) << to_string(kind);
      plain_total += plain.bytes_transferred;
      framed_total += framed.bytes_transferred;
    }
  }
  EXPECT_LE(framed_total, plain_total);
}

class CertCachedStrategyEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertCachedStrategyEquivalence, CacheOffIsIdenticalAndWarmStillAgrees) {
  // --certcache=off is not a mode, it is the absence of one: explicitly
  // passing StrategyOptions::cert_cache = nullptr must reproduce the plain
  // executor's report bit for bit. A warm cache re-run may strip check
  // traffic but must keep the reference answer and never ship more.
  Rng rng(GetParam());
  const std::size_t n_db = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const SampleParams sample = draw_sample(small_config(n_db), rng);
  const SynthFederation synth = materialize_sample(sample);
  ASSERT_TRUE(synth.federation->check_consistency().empty());

  const QueryResult expected = reference_answer(*synth.federation, synth.query);
  for (const StrategyKind kind : kAllStrategies) {
    const StrategyReport plain =
        execute_strategy(kind, *synth.federation, synth.query);
    StrategyOptions off;
    off.cert_cache = nullptr;
    const StrategyReport without =
        execute_strategy(kind, *synth.federation, synth.query, off);
    EXPECT_EQ(without.result, plain.result) << to_string(kind);
    EXPECT_EQ(without.response_ns, plain.response_ns) << to_string(kind);
    EXPECT_EQ(without.total_ns, plain.total_ns) << to_string(kind);
    EXPECT_EQ(without.bytes_transferred, plain.bytes_transferred)
        << to_string(kind);
    EXPECT_EQ(without.messages, plain.messages) << to_string(kind);
    EXPECT_EQ(without.cert_hits, 0u) << to_string(kind);
    EXPECT_EQ(without.cert_misses, 0u) << to_string(kind);

    CertCache cache;
    StrategyOptions with;
    with.cert_cache = &cache;
    const StrategyReport cold =
        execute_strategy(kind, *synth.federation, synth.query, with);
    EXPECT_EQ(cold.result, expected)
        << to_string(kind) << " diverged cold-cached on seed " << GetParam();
    EXPECT_EQ(cold.bytes_transferred, plain.bytes_transferred)
        << to_string(kind) << ": a cold cache must be invisible";
    EXPECT_EQ(cold.cert_hits, 0u) << to_string(kind);
    const StrategyReport warm =
        execute_strategy(kind, *synth.federation, synth.query, with);
    EXPECT_EQ(warm.result, expected)
        << to_string(kind) << " diverged warm-cached on seed " << GetParam();
    EXPECT_LE(warm.bytes_transferred, plain.bytes_transferred)
        << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertCachedStrategyEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(StrategyDeterminism, RepeatedRunsAreBitIdentical) {
  Rng rng(7);
  const SampleParams sample = draw_sample(small_config(3), rng);
  const SynthFederation synth = materialize_sample(sample);
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport a =
        execute_strategy(kind, *synth.federation, synth.query);
    const StrategyReport b =
        execute_strategy(kind, *synth.federation, synth.query);
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.response_ns, b.response_ns) << to_string(kind);
    EXPECT_EQ(a.total_ns, b.total_ns) << to_string(kind);
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << to_string(kind);
  }
}

TEST(StrategySignatures, SignatureVariantsNeverShipMoreBytes) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const SampleParams sample = draw_sample(small_config(3), rng);
    const SynthFederation synth = materialize_sample(sample);
    const auto bl = execute_strategy(StrategyKind::BL, *synth.federation,
                                     synth.query);
    const auto bls = execute_strategy(StrategyKind::BLS, *synth.federation,
                                      synth.query);
    EXPECT_LE(bls.bytes_transferred, bl.bytes_transferred);
    EXPECT_EQ(bls.result, bl.result);
  }
}

}  // namespace
}  // namespace isomer
