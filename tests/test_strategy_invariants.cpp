// Cross-cutting invariants of the simulated strategy executions.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

SynthFederation make_synth(std::uint64_t seed, std::size_t n_db = 3) {
  Rng rng(seed);
  ParamConfig config;
  config.n_db = n_db;
  config.n_objects = {40, 80};
  const SampleParams sample = draw_sample(config, rng);
  return materialize_sample(sample);
}

class TopologyInvariants
    : public ::testing::TestWithParam<NetworkTopology> {};

TEST_P(TopologyInvariants, AnswersAreTopologyIndependent) {
  const SynthFederation synth = make_synth(500);
  const QueryResult expected =
      reference_answer(*synth.federation, synth.query);
  StrategyOptions options;
  options.record_trace = false;
  options.topology = GetParam();
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query, options);
    EXPECT_EQ(report.result, expected) << to_string(kind);
    EXPECT_GE(report.total_ns, report.response_ns);
  }
}

TEST_P(TopologyInvariants, NetworkBusyReflectsContentionModel) {
  const SynthFederation synth = make_synth(501);
  StrategyOptions options;
  options.record_trace = false;
  options.topology = GetParam();
  const StrategyReport report = execute_strategy(
      StrategyKind::BL, *synth.federation, synth.query, options);
  const SimTime nominal =
      CostParams{}.net_time(report.bytes_transferred);
  if (GetParam() == NetworkTopology::CollisionBus)
    EXPECT_GE(report.net_ns, nominal) << "collisions can only add time";
  else
    EXPECT_EQ(report.net_ns, nominal)
        << "FIFO queueing delays but never burns bandwidth";
}

INSTANTIATE_TEST_SUITE_P(
    All, TopologyInvariants,
    ::testing::Values(NetworkTopology::SharedBus,
                      NetworkTopology::PointToPoint,
                      NetworkTopology::Contentionless,
                      NetworkTopology::CollisionBus),
    [](const auto& info) {
      std::string name(to_string(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(StrategyInvariants, ContentionlessResponseNeverSlower) {
  const SynthFederation synth = make_synth(502, 5);
  StrategyOptions shared, free;
  shared.record_trace = free.record_trace = false;
  shared.topology = NetworkTopology::SharedBus;
  free.topology = NetworkTopology::Contentionless;
  for (const StrategyKind kind : kPaperStrategies) {
    const auto with_bus =
        execute_strategy(kind, *synth.federation, synth.query, shared);
    const auto without =
        execute_strategy(kind, *synth.federation, synth.query, free);
    EXPECT_LE(without.response_ns, with_bus.response_ns) << to_string(kind);
    EXPECT_EQ(without.result, with_bus.result);
  }
}

TEST(StrategyInvariants, TraceCoversEveryPhase) {
  const SynthFederation synth = make_synth(503);
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query);
    EXPECT_TRUE(report.trace.first_start(Phase::P).has_value());
    EXPECT_TRUE(report.trace.first_start(Phase::I).has_value());
    // The answer is ready exactly when the last O/I/P burst completes —
    // nothing but bookkeeping happens after it.
    SimTime last = 0;
    for (const Phase phase : {Phase::O, Phase::I, Phase::P})
      if (const auto end = report.trace.last_end(phase))
        last = std::max(last, *end);
    EXPECT_EQ(report.response_ns, last) << to_string(kind);
    EXPECT_GT(report.response_ns, 0);
  }
}

TEST(StrategyInvariants, WorkAggregateIsStrategyDependentButNonzero) {
  const SynthFederation synth = make_synth(504);
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, synth.query);
    EXPECT_GT(report.work.comparisons, 0u) << to_string(kind);
    EXPECT_GT(report.work.objects_scanned, 0u) << to_string(kind);
    EXPECT_GT(report.bytes_transferred, 0u) << to_string(kind);
    EXPECT_GT(report.messages, 0u) << to_string(kind);
  }
}

TEST(StrategyInvariants, CostScalesWithRates) {
  const SynthFederation synth = make_synth(505);
  StrategyOptions slow;
  slow.record_trace = false;
  slow.costs.disk_ns_per_byte *= 2;
  StrategyOptions base;
  base.record_trace = false;
  for (const StrategyKind kind : kPaperStrategies) {
    const auto fast =
        execute_strategy(kind, *synth.federation, synth.query, base);
    const auto slower =
        execute_strategy(kind, *synth.federation, synth.query, slow);
    EXPECT_EQ(slower.disk_ns, 2 * fast.disk_ns) << to_string(kind);
    EXPECT_EQ(slower.net_ns, fast.net_ns) << to_string(kind);
    EXPECT_EQ(slower.result, fast.result);
  }
}

TEST(StrategyInvariants, EmptyFederationAnswers) {
  // A federation whose extents are empty still answers (empty result).
  Rng rng(506);
  ParamConfig config;
  config.n_objects = {1, 1};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  GlobalQuery impossible = synth.query;
  impossible.predicates.push_back(
      Predicate{PathExpr::parse("id"), CompOp::Lt, Value(0)});
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *synth.federation, impossible);
    EXPECT_TRUE(report.result.rows.empty()) << to_string(kind);
  }
}

TEST(StrategyInvariants, StrategyNames) {
  EXPECT_EQ(to_string(StrategyKind::CA), "CA");
  EXPECT_EQ(to_string(StrategyKind::BL), "BL");
  EXPECT_EQ(to_string(StrategyKind::PL), "PL");
  EXPECT_EQ(to_string(StrategyKind::BLS), "BL-S");
  EXPECT_EQ(to_string(StrategyKind::PLS), "PL-S");
}

}  // namespace
}  // namespace isomer
