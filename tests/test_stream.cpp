// Concurrent query streams: shared-cluster contention, answer preservation,
// and queueing behavior between queries.
#include <gtest/gtest.h>

#include "isomer/core/stream.hpp"
#include "isomer/workload/paper_example.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

TEST(Stream, SingleQueryMatchesStandaloneExecution) {
  const paper::UniversityExample example = paper::make_university();
  StrategyOptions options;
  options.record_trace = false;
  const StrategyReport solo =
      execute_strategy(StrategyKind::BL, *example.federation, paper::q1(),
                       options);
  const StreamReport stream = run_query_stream(
      *example.federation, {{paper::q1(), 0, StrategyKind::BL}}, options);
  ASSERT_EQ(stream.outcomes.size(), 1u);
  EXPECT_EQ(stream.outcomes[0].result, solo.result);
  EXPECT_EQ(stream.outcomes[0].latency(), solo.response_ns);
  EXPECT_EQ(stream.makespan, solo.response_ns);
  EXPECT_EQ(stream.total_busy_ns, solo.total_ns);
}

TEST(Stream, ConcurrentQueriesAllAnswerCorrectly) {
  const paper::UniversityExample example = paper::make_university();
  const QueryResult expected =
      reference_answer(*example.federation, paper::q1());
  std::vector<StreamQuery> stream;
  for (int i = 0; i < 4; ++i)
    stream.push_back({paper::q1(), microseconds(i * 100), StrategyKind::BL});
  const StreamReport report =
      run_query_stream(*example.federation, stream);
  for (const StreamOutcome& outcome : report.outcomes)
    EXPECT_EQ(outcome.result, expected);
}

TEST(Stream, ContentionStretchesLatency) {
  // Four simultaneous queries on one cluster: each sees strictly more
  // queueing than a lone run, and the makespan exceeds the solo response.
  const paper::UniversityExample example = paper::make_university();
  StrategyOptions options;
  options.record_trace = false;
  const SimTime solo =
      execute_strategy(StrategyKind::BL, *example.federation, paper::q1(),
                       options)
          .response_ns;
  std::vector<StreamQuery> burst(4,
                                 {paper::q1(), 0, StrategyKind::BL});
  const StreamReport report =
      run_query_stream(*example.federation, burst, options);
  EXPECT_GT(report.makespan, solo);
  for (const StreamOutcome& outcome : report.outcomes)
    EXPECT_GE(outcome.latency(), solo);
  // Work is additive: four queries do four times the lone query's work.
  EXPECT_EQ(report.total_busy_ns,
            4 * execute_strategy(StrategyKind::BL, *example.federation,
                                 paper::q1(), options)
                    .total_ns);
}

TEST(Stream, WellSpacedQueriesDoNotInterfere) {
  const paper::UniversityExample example = paper::make_university();
  StrategyOptions options;
  options.record_trace = false;
  const SimTime solo =
      execute_strategy(StrategyKind::BL, *example.federation, paper::q1(),
                       options)
          .response_ns;
  // Arrivals far apart: each query finds an idle cluster.
  std::vector<StreamQuery> spaced;
  for (int i = 0; i < 3; ++i)
    spaced.push_back(
        {paper::q1(), i * (solo + microseconds(1000)), StrategyKind::BL});
  const StreamReport report =
      run_query_stream(*example.federation, spaced, options);
  for (const StreamOutcome& outcome : report.outcomes)
    EXPECT_EQ(outcome.latency(), solo);
}

TEST(Stream, MixedStrategiesShareTheCluster) {
  const paper::UniversityExample example = paper::make_university();
  const QueryResult expected =
      reference_answer(*example.federation, paper::q1());
  const std::vector<StreamQuery> mixed = {
      {paper::q1(), 0, StrategyKind::CA},
      {paper::q1(), 0, StrategyKind::BL},
      {paper::q1(), 0, StrategyKind::PL},
  };
  const StreamReport report = run_query_stream(*example.federation, mixed);
  for (const StreamOutcome& outcome : report.outcomes)
    EXPECT_EQ(outcome.result, expected);
  EXPECT_GT(report.mean_latency_ms(), 0.0);
  EXPECT_GE(report.max_latency(), report.outcomes[0].latency());
}

TEST(Stream, LocalizedBurstsBeatCentralizedBursts) {
  // The capacity angle: under a burst of identical queries the localized
  // strategy's smaller shared-medium footprint wins on mean latency.
  Rng rng(77);
  ParamConfig config;
  config.n_objects = {150, 200};
  // Multi-class queries with real predicates: the regime where localized
  // evaluation structurally ships and scans less than CA (single-class
  // no-predicate samples can go either way).
  config.n_classes = {3, 4};
  config.n_preds = {1, 3};
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  StrategyOptions options;
  options.record_trace = false;

  const auto burst_of = [&](StrategyKind kind) {
    std::vector<StreamQuery> stream(4, {synth.query, 0, kind});
    return run_query_stream(*synth.federation, stream, options);
  };
  const StreamReport ca = burst_of(StrategyKind::CA);
  const StreamReport bl = burst_of(StrategyKind::BL);
  EXPECT_LT(bl.mean_latency_ms(), ca.mean_latency_ms());
  EXPECT_LT(bl.makespan, ca.makespan);
}

TEST(Stream, EmptyStream) {
  const paper::UniversityExample example = paper::make_university();
  const StreamReport report = run_query_stream(*example.federation, {});
  EXPECT_TRUE(report.outcomes.empty());
  EXPECT_EQ(report.makespan, 0);
  EXPECT_EQ(report.total_busy_ns, 0);
}

}  // namespace
}  // namespace isomer
