// --trace output must be --jobs-invariant, mirroring
// test_harness_determinism: every Monte-Carlo trial records its spans into
// its own TraceSession and the harness serializes them in trial order, so
// the recorded span set — and the bytes of the trace file — are identical
// at every thread count. (Span times are *simulated* ns, so even the
// "wall-time" fields are deterministic; the sorted-set comparison below
// ignores them anyway to pin down the invariant that matters.)
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "harness.hpp"

namespace isomer {
namespace {

using obs::PhaseSpan;
using obs::TraceSession;

ParamConfig tiny_config() {
  ParamConfig config;
  config.n_objects = {40, 60};  // keep the DES side fast
  return config;
}

/// Collects every trial's spans in trial order at the given job count.
std::vector<PhaseSpan> spans_at(int jobs, int samples, std::uint64_t seed) {
  const std::vector<StrategyKind> kinds = {StrategyKind::CA, StrategyKind::BL,
                                           StrategyKind::PL};
  const ParamConfig config = tiny_config();
  std::vector<TraceSession> sessions(static_cast<std::size_t>(samples));
  bench::for_each_trial(samples, seed, jobs, [&](std::size_t i, Rng& rng) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    for (const StrategyKind kind : kinds) {
      StrategyOptions options;
      options.record_trace = false;
      options.trace_session = &sessions[i];
      (void)execute_strategy(kind, *synth.federation, synth.query, options);
    }
  });
  std::vector<PhaseSpan> all;
  for (const TraceSession& session : sessions)
    for (const PhaseSpan& span : session.spans()) all.push_back(span);
  return all;
}

/// Everything but the simulated interval, for the time-blind comparison.
auto time_blind_key(const PhaseSpan& span) {
  return std::make_tuple(span.strategy, span.query,
                         static_cast<int>(span.phase), span.site, span.step,
                         span.work.objects_scanned, span.work.objects_fetched,
                         span.work.comparisons, span.work.table_probes,
                         span.work.prim_slots, span.work.ref_slots,
                         span.bytes, span.messages, span.objects_in,
                         span.objects_out, span.certs_resolved,
                         span.certs_eliminated);
}

TEST(TraceDeterminism, SpanSetIdenticalAcrossJobCounts) {
  const std::vector<PhaseSpan> serial = spans_at(/*jobs=*/1, 6, 77);
  ASSERT_FALSE(serial.empty());
  for (const int jobs : {2, 4, 8}) {
    const std::vector<PhaseSpan> parallel = spans_at(jobs, 6, 77);
    // The strong form first: trial-ordered spans are *exactly* equal,
    // simulated times included.
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;

    // And the contract the docs promise: the sorted span set, ignoring the
    // wall-time fields, is identical.
    auto a = serial, b = parallel;
    const auto by_key = [](const PhaseSpan& x, const PhaseSpan& y) {
      return time_blind_key(x) < time_blind_key(y);
    };
    std::sort(a.begin(), a.end(), by_key);
    std::sort(b.begin(), b.end(), by_key);
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(time_blind_key(a[i]), time_blind_key(b[i]))
          << "jobs=" << jobs << " span " << i;
  }
}

/// The full --trace pipeline: run_point + TraceSink writing real files.
std::string trace_file_at(int jobs, const std::string& path) {
  bench::HarnessOptions options;
  options.samples = 5;
  options.seed = 41;
  options.jobs = jobs;
  options.trace_path = path;
  // The metrics trailer reports the process-global registry; reset it so
  // both runs append identical trailers.
  obs::MetricsRegistry::global().reset();
  {
    bench::TraceSink trace(options.trace_path, "test", options);
    EXPECT_TRUE(trace.enabled());
    trace.set_point("test", "N_o", 50);
    const std::vector<StrategyKind> kinds = {StrategyKind::CA,
                                             StrategyKind::BL};
    (void)bench::run_point(tiny_config(), kinds, options.samples,
                           options.seed, jobs, NetworkTopology::SharedBus,
                           0.3, trace.if_enabled());
  }  // destructor flushes the metrics trailer
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TraceDeterminism, TraceFilesIdenticalAcrossJobCountsExceptHeader) {
  const std::string dir = ::testing::TempDir();
  const std::string serial = trace_file_at(1, dir + "trace_j1.jsonl");
  const std::string parallel = trace_file_at(4, dir + "trace_j4.jsonl");
  ASSERT_FALSE(serial.empty());

  // Line 1 is the header and legitimately differs: it reports the
  // effective --jobs value. Every following byte must match.
  const auto body = [](const std::string& text) {
    return text.substr(text.find('\n') + 1);
  };
  const std::string serial_header = serial.substr(0, serial.find('\n'));
  const std::string parallel_header = parallel.substr(0, parallel.find('\n'));
  EXPECT_NE(serial_header.find("\"jobs\":1"), std::string::npos)
      << serial_header;
  EXPECT_NE(parallel_header.find("\"jobs\":4"), std::string::npos)
      << parallel_header;
  EXPECT_EQ(body(serial), body(parallel));
}

TEST(TraceSink, AbortedRunLeavesAnExistingTraceFileUntouched) {
  // Regression: TraceSink used to open --trace=FILE with std::ios::trunc at
  // construction, so a sweep that aborted (usage error, uncaught exception,
  // crash) destroyed the previous run's trace. The sink now writes to
  // FILE.tmp and renames onto FILE only when the destructor runs.
  const std::string path = ::testing::TempDir() + "trace_no_trunc.jsonl";
  const std::string sentinel = "precious bytes from an earlier sweep\n";
  {
    std::ofstream out(path, std::ios::trunc);
    out << sentinel;
  }

  bench::HarnessOptions options;
  options.samples = 1;
  options.seed = 1;
  {
    bench::TraceSink sink(path, "test", options);
    ASSERT_TRUE(sink.enabled());
    // Mid-run — the moment an abort would strike — the original file still
    // holds the previous sweep, byte for byte.
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), sentinel);
    EXPECT_TRUE(std::ifstream(path + ".tmp").good())
        << "sink should be writing to the temp file";
  }  // clean completion: destructor renames the temp file into place

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str(), sentinel) << "completed run must replace the file";
  EXPECT_NE(buffer.str().find("isomer-trace-v1"), std::string::npos);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "rename must consume the temp file";
}

}  // namespace
}  // namespace isomer
