// Trace export: Chrome trace-event JSON and the ASCII Gantt chart.
#include <gtest/gtest.h>

#include "isomer/core/strategy.hpp"
#include "isomer/sim/trace_export.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

ExecutionTrace sample_trace() {
  ExecutionTrace trace;
  trace.record("DB1", "eval", Phase::P, 0, 10);
  trace.record("DB1->global", "rows", Phase::Transfer, 10, 14);
  trace.record("global", "certify \"q\"", Phase::I, 14, 20);
  return trace;
}

TEST(TraceExport, ChromeJsonShape) {
  const std::string json = to_chrome_json(sample_trace());
  EXPECT_EQ(json.front(), '[');
  // Thread-name metadata for every site lane.
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"eval")"), std::string::npos);
  // Complete events with microsecond timestamps: 14 us start, 6 us dur.
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("ts":0.014)"), std::string::npos);
  EXPECT_NE(json.find(R"("dur":0.006)"), std::string::npos);
  // Quotes in step names are escaped.
  EXPECT_NE(json.find(R"(certify \"q\")"), std::string::npos);
}

TEST(TraceExport, ChromeJsonIsWellBracketed) {
  const std::string json = to_chrome_json(sample_trace());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, GanttRowsPerSite) {
  const std::string chart = to_gantt(sample_trace(), 40);
  // One row per site, phases rendered with their glyphs.
  EXPECT_NE(chart.find("DB1"), std::string::npos);
  EXPECT_NE(chart.find("global"), std::string::npos);
  EXPECT_NE(chart.find('P'), std::string::npos);
  EXPECT_NE(chart.find('I'), std::string::npos);
  EXPECT_NE(chart.find('-'), std::string::npos);
}

TEST(TraceExport, GanttEmptyTrace) {
  EXPECT_EQ(to_gantt(ExecutionTrace{}), "(empty trace)\n");
}

TEST(TraceExport, RealStrategyTraceExports) {
  const paper::UniversityExample example = paper::make_university();
  for (const StrategyKind kind : kPaperStrategies) {
    const StrategyReport report =
        execute_strategy(kind, *example.federation, paper::q1());
    const std::string json = to_chrome_json(report.trace);
    EXPECT_GT(json.size(), 100u) << to_string(kind);
    const std::string chart = to_gantt(report.trace);
    EXPECT_NE(chart.find("global"), std::string::npos) << to_string(kind);
  }
}

TEST(TraceExport, GanttOrderReflectsPhaseOrder) {
  // In a BL trace the P glyphs at component sites precede the global I.
  const paper::UniversityExample example = paper::make_university();
  const StrategyReport report =
      execute_strategy(StrategyKind::BL, *example.federation, paper::q1());
  const std::string chart = to_gantt(report.trace, 60);
  const std::size_t first_p = chart.find('P');
  ASSERT_NE(first_p, std::string::npos);
  // The global row's I block sits to the right of the first P column.
  std::istringstream in(chart);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("global ", 0) == 0) {  // the site row, not a transfer lane
      const std::size_t i_pos = line.find('I');
      ASSERT_NE(i_pos, std::string::npos);
      break;
    }
  }
}

}  // namespace
}  // namespace isomer
