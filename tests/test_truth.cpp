// Kleene three-valued logic: truth tables and algebraic laws.
#include <gtest/gtest.h>

#include <array>

#include "isomer/common/truth.hpp"

namespace isomer {
namespace {

constexpr std::array<Truth, 3> kAll = {Truth::False, Truth::Unknown,
                                       Truth::True};

TEST(Truth, AndTruthTable) {
  EXPECT_EQ(Truth::True && Truth::True, Truth::True);
  EXPECT_EQ(Truth::True && Truth::Unknown, Truth::Unknown);
  EXPECT_EQ(Truth::True && Truth::False, Truth::False);
  EXPECT_EQ(Truth::Unknown && Truth::Unknown, Truth::Unknown);
  EXPECT_EQ(Truth::Unknown && Truth::False, Truth::False);
  EXPECT_EQ(Truth::False && Truth::False, Truth::False);
}

TEST(Truth, OrTruthTable) {
  EXPECT_EQ(Truth::True || Truth::True, Truth::True);
  EXPECT_EQ(Truth::True || Truth::Unknown, Truth::True);
  EXPECT_EQ(Truth::True || Truth::False, Truth::True);
  EXPECT_EQ(Truth::Unknown || Truth::Unknown, Truth::Unknown);
  EXPECT_EQ(Truth::Unknown || Truth::False, Truth::Unknown);
  EXPECT_EQ(Truth::False || Truth::False, Truth::False);
}

TEST(Truth, NotTruthTable) {
  EXPECT_EQ(!Truth::True, Truth::False);
  EXPECT_EQ(!Truth::False, Truth::True);
  EXPECT_EQ(!Truth::Unknown, Truth::Unknown);
}

TEST(Truth, FromBool) {
  EXPECT_EQ(truth_of(true), Truth::True);
  EXPECT_EQ(truth_of(false), Truth::False);
}

class TruthPairs : public ::testing::TestWithParam<std::pair<Truth, Truth>> {};

TEST_P(TruthPairs, Commutativity) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(a && b, b && a);
  EXPECT_EQ(a || b, b || a);
}

TEST_P(TruthPairs, DeMorgan) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(!(a && b), (!a) || (!b));
  EXPECT_EQ(!(a || b), (!a) && (!b));
}

TEST_P(TruthPairs, Absorption) {
  const auto [a, b] = GetParam();
  EXPECT_EQ(a && (a || b), a);
  EXPECT_EQ(a || (a && b), a);
}

TEST_P(TruthPairs, Monotone) {
  // Conjunction never exceeds either operand in the information order.
  const auto [a, b] = GetParam();
  EXPECT_LE(static_cast<int>(a && b), static_cast<int>(a));
  EXPECT_GE(static_cast<int>(a || b), static_cast<int>(a));
}

std::vector<std::pair<Truth, Truth>> all_pairs() {
  std::vector<std::pair<Truth, Truth>> pairs;
  for (const Truth a : kAll)
    for (const Truth b : kAll) pairs.emplace_back(a, b);
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, TruthPairs,
                         ::testing::ValuesIn(all_pairs()));

class TruthSingles : public ::testing::TestWithParam<Truth> {};

TEST_P(TruthSingles, DoubleNegation) {
  EXPECT_EQ(!!GetParam(), GetParam());
}

TEST_P(TruthSingles, Idempotence) {
  EXPECT_EQ(GetParam() && GetParam(), GetParam());
  EXPECT_EQ(GetParam() || GetParam(), GetParam());
}

TEST_P(TruthSingles, IdentityElements) {
  EXPECT_EQ(GetParam() && Truth::True, GetParam());
  EXPECT_EQ(GetParam() || Truth::False, GetParam());
}

INSTANTIATE_TEST_SUITE_P(All, TruthSingles, ::testing::ValuesIn(kAll));

TEST(Truth, ConjunctionFold) {
  EXPECT_EQ(conjunction(std::vector<Truth>{}), Truth::True);
  EXPECT_EQ(conjunction(std::vector<Truth>{Truth::True, Truth::True}),
            Truth::True);
  EXPECT_EQ(conjunction(std::vector<Truth>{Truth::True, Truth::Unknown}),
            Truth::Unknown);
  EXPECT_EQ(conjunction(std::vector<Truth>{Truth::Unknown, Truth::False}),
            Truth::False);
}

TEST(Truth, DisjunctionFold) {
  EXPECT_EQ(disjunction(std::vector<Truth>{}), Truth::False);
  EXPECT_EQ(disjunction(std::vector<Truth>{Truth::False, Truth::Unknown}),
            Truth::Unknown);
  EXPECT_EQ(disjunction(std::vector<Truth>{Truth::Unknown, Truth::True}),
            Truth::True);
}

TEST(Truth, Printing) {
  EXPECT_EQ(to_string(Truth::True), "true");
  EXPECT_EQ(to_string(Truth::False), "false");
  EXPECT_EQ(to_string(Truth::Unknown), "unknown");
}

TEST(Truth, Predicates) {
  EXPECT_TRUE(is_true(Truth::True));
  EXPECT_TRUE(is_false(Truth::False));
  EXPECT_TRUE(is_unknown(Truth::Unknown));
  EXPECT_FALSE(is_true(Truth::Unknown));
  EXPECT_FALSE(is_false(Truth::Unknown));
}

}  // namespace
}  // namespace isomer
