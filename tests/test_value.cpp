// The Value variant: construction, accessors, three-valued comparison.
#include <gtest/gtest.h>

#include "isomer/common/error.hpp"
#include "isomer/common/value.hpp"

namespace isomer {
namespace {

TEST(Value, DefaultIsNull) {
  const Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::Null);
  EXPECT_EQ(Value::null(), v);
}

TEST(Value, Kinds) {
  EXPECT_EQ(Value(true).kind(), ValueKind::Bool);
  EXPECT_EQ(Value(42).kind(), ValueKind::Int);
  EXPECT_EQ(Value(4.5).kind(), ValueKind::Real);
  EXPECT_EQ(Value("hi").kind(), ValueKind::String);
  EXPECT_EQ(Value(LocalRef{LOid{DbId{1}, 2}}).kind(), ValueKind::LocalRef);
  EXPECT_EQ(Value(GlobalRef{GOid{3}}).kind(), ValueKind::GlobalRef);
  EXPECT_EQ(Value(LocalRefSet{{LOid{DbId{1}, 2}}}).kind(),
            ValueKind::LocalRefSet);
  EXPECT_EQ(Value(GlobalRefSet{{GOid{3}}}).kind(), ValueKind::GlobalRefSet);
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(4.5).as_real(), 4.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(LocalRef{LOid{DbId{1}, 2}}).as_local_ref(),
            (LOid{DbId{1}, 2}));
  EXPECT_EQ(Value(GlobalRef{GOid{3}}).as_global_ref(), GOid{3});
}

TEST(Value, AccessorContractViolations) {
  EXPECT_THROW((void)Value(42).as_bool(), ContractViolation);
  EXPECT_THROW((void)Value("x").as_int(), ContractViolation);
  EXPECT_THROW((void)Value().as_string(), ContractViolation);
  EXPECT_THROW((void)Value(1).as_local_ref(), ContractViolation);
}

TEST(Value, NumericView) {
  EXPECT_DOUBLE_EQ(Value(3).as_number(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_TRUE(Value(3).is_numeric());
  EXPECT_FALSE(Value("3").is_numeric());
  EXPECT_THROW((void)Value("3").as_number(), ContractViolation);
}

TEST(Value, ClassificationHelpers) {
  EXPECT_TRUE(Value(1).is_primitive());
  EXPECT_TRUE(Value(LocalRef{LOid{DbId{1}, 1}}).is_ref());
  EXPECT_TRUE(Value(LocalRefSet{}).is_ref_set());
  EXPECT_FALSE(Value().is_primitive());
  EXPECT_FALSE(Value().is_ref());
}

// --- three-valued equality ---

TEST(ValueCompare, NullMakesEqualityUnknown) {
  EXPECT_EQ(compare_eq(Value(), Value(1)), Truth::Unknown);
  EXPECT_EQ(compare_eq(Value(1), Value()), Truth::Unknown);
  EXPECT_EQ(compare_eq(Value(), Value()), Truth::Unknown);
}

TEST(ValueCompare, PrimitiveEquality) {
  EXPECT_EQ(compare_eq(Value(1), Value(1)), Truth::True);
  EXPECT_EQ(compare_eq(Value(1), Value(2)), Truth::False);
  EXPECT_EQ(compare_eq(Value("a"), Value("a")), Truth::True);
  EXPECT_EQ(compare_eq(Value("a"), Value("b")), Truth::False);
  EXPECT_EQ(compare_eq(Value(true), Value(false)), Truth::False);
}

TEST(ValueCompare, MixedNumericComparesNumerically) {
  EXPECT_EQ(compare_eq(Value(2), Value(2.0)), Truth::True);
  EXPECT_EQ(compare_less(Value(1), Value(1.5)), Truth::True);
}

TEST(ValueCompare, RefEquality) {
  const LOid a{DbId{1}, 1}, b{DbId{1}, 2};
  EXPECT_EQ(compare_eq(Value(LocalRef{a}), Value(LocalRef{a})), Truth::True);
  EXPECT_EQ(compare_eq(Value(LocalRef{a}), Value(LocalRef{b})), Truth::False);
  EXPECT_EQ(compare_eq(Value(GlobalRef{GOid{1}}), Value(GlobalRef{GOid{1}})),
            Truth::True);
}

TEST(ValueCompare, IncompatibleKindsThrow) {
  EXPECT_THROW((void)compare_eq(Value(1), Value("1")), QueryError);
  EXPECT_THROW((void)compare_eq(Value(true), Value(1)), QueryError);
  EXPECT_THROW((void)compare_less(Value(true), Value(false)), QueryError);
  EXPECT_THROW(
      (void)compare_less(Value(LocalRef{LOid{}}), Value(LocalRef{LOid{}})),
      QueryError);
}

TEST(ValueCompare, Ordering) {
  EXPECT_EQ(compare_less(Value(1), Value(2)), Truth::True);
  EXPECT_EQ(compare_less(Value(2), Value(1)), Truth::False);
  EXPECT_EQ(compare_less(Value("abc"), Value("abd")), Truth::True);
  EXPECT_EQ(compare_less(Value(), Value(1)), Truth::Unknown);
}

TEST(Value, ExactEqualityTreatsNullAsEqual) {
  // operator== is container equality, not SQL equality.
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(0));
}

TEST(Value, Printing) {
  EXPECT_EQ(to_string(Value()), "-");
  EXPECT_EQ(to_string(Value(42)), "42");
  EXPECT_EQ(to_string(Value("x")), "x");
  EXPECT_EQ(to_string(Value(GlobalRef{GOid{7}})), "g7");
  EXPECT_EQ(to_string(Value(LocalRef{LOid{DbId{2}, 3}})), "o3@DB2");
  EXPECT_EQ(to_string(Value(GlobalRefSet{{GOid{1}, GOid{2}}})), "{g1, g2}");
}

TEST(Value, KindNames) {
  EXPECT_EQ(to_string(ValueKind::Null), "null");
  EXPECT_EQ(to_string(ValueKind::LocalRefSet), "local-ref-set");
}

}  // namespace
}  // namespace isomer
