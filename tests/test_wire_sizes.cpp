// The executors' message sizing (exec_common): row messages, check
// requests/responses, and the centralized approach's projected extents.
#include <gtest/gtest.h>

#include "isomer/core/exec_common.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

TEST(WireSizes, EmptyRowsCostNothing) {
  EXPECT_EQ(detail::rows_wire_bytes(CostParams{}, {}), 0u);
}

TEST(WireSizes, RowCarriesIdsTargetsAndUnknowns) {
  const CostParams costs;
  LocalRow row;
  row.root = LOid{DbId{1}, 1};
  row.entity = GOid{1};
  row.targets = {Value("Tony"), Value::null(), Value(GlobalRef{GOid{2}}),
                 Value(GlobalRefSet{{GOid{3}, GOid{4}}})};
  row.preds = {
      PredStatus{Truth::True, GOid{}, 0, false},
      PredStatus{Truth::Unknown, GOid{9}, 1, false},
  };
  // LOid+GOid header, one string target (S_a), null free, one GOid ref,
  // a two-element GOid set, and one unknown predicate (GOid + 8).
  const Bytes expected = (16 + 16) + 32 + 0 + 16 + 2 * 16 + (16 + 8);
  EXPECT_EQ(detail::rows_wire_bytes(costs, {row}), expected);
}

TEST(WireSizes, RowBytesScaleLinearly) {
  const CostParams costs;
  LocalRow row;
  row.targets = {Value(1)};
  row.preds = {PredStatus{Truth::True, GOid{}, 0, false}};
  const Bytes one = detail::rows_wire_bytes(costs, {row});
  EXPECT_EQ(detail::rows_wire_bytes(costs, {row, row, row}), 3 * one);
}

TEST(WireSizes, CheckMessages) {
  const CostParams costs;
  // Header + per-task LOid + GOid + predicate (2 attrs).
  EXPECT_EQ(detail::check_request_wire_bytes(costs, 0), costs.attr_bytes);
  EXPECT_EQ(detail::check_request_wire_bytes(costs, 3),
            costs.attr_bytes + 3 * (16 + 16 + 64));
  EXPECT_EQ(detail::check_response_wire_bytes(costs, 2),
            costs.attr_bytes + 2 * (16 + 8));
}

/// Deliberately skewed layout: every id width differs, so a calculator
/// charging the wrong constant cannot cancel out the way it does at the
/// defaults (where loid == goid == 16).
CostParams skewed_costs() {
  CostParams costs;
  costs.loid_bytes = 8;
  costs.goid_bytes = 24;
  costs.attr_bytes = 40;
  return costs;
}

TEST(WireSizes, RowLayoutDerivesFromCostParams) {
  const CostParams costs = skewed_costs();
  LocalRow row;
  row.root = LOid{DbId{1}, 1};
  row.entity = GOid{1};
  row.targets = {Value("Tony"), Value(LocalRef{LOid{DbId{1}, 7}}),
                 Value(LocalRefSet{{LOid{DbId{1}, 2}, LOid{DbId{1}, 3},
                                    LOid{DbId{1}, 4}}}),
                 Value(GlobalRefSet{{GOid{5}}})};
  row.preds = {PredStatus{Truth::Unknown, GOid{9}, 1, false}};
  const Bytes expected = costs.loid_bytes + costs.goid_bytes  // row ids
                         + costs.attr_bytes                   // string target
                         + costs.goid_bytes          // globalized LocalRef
                         + 3 * costs.goid_bytes      // globalized LocalRefSet
                         + 1 * costs.goid_bytes      // GlobalRefSet
                         + (costs.goid_bytes + 8);   // unknown predicate
  EXPECT_EQ(detail::rows_wire_bytes(costs, {row}), expected);
}

TEST(WireSizes, LocalRefSetsAreGlobalizedOnTheWire) {
  // Regression: the calculator once charged loid_bytes per set element while
  // the executors ship GOids after mapping (Fig. 6 globalization) — a
  // disagreement invisible at the defaults where the two widths coincide.
  CostParams costs;
  costs.loid_bytes = 4;
  costs.goid_bytes = 32;
  LocalRow row;
  row.targets = {Value(LocalRefSet{{LOid{DbId{1}, 1}, LOid{DbId{1}, 2}}})};
  EXPECT_EQ(detail::rows_wire_bytes(costs, {row}),
            costs.loid_bytes + costs.goid_bytes + 2 * costs.goid_bytes);
}

TEST(WireSizes, CheckMessageLayoutDerivesFromCostParams) {
  const CostParams costs = skewed_costs();
  EXPECT_EQ(costs.check_task_bytes(),
            costs.loid_bytes + costs.goid_bytes + 2 * costs.attr_bytes);
  EXPECT_EQ(costs.verdict_bytes(), costs.goid_bytes + 8);
  EXPECT_EQ(detail::check_request_wire_bytes(costs, 5),
            costs.attr_bytes + 5 * costs.check_task_bytes());
  EXPECT_EQ(detail::check_response_wire_bytes(costs, 5),
            costs.attr_bytes + 5 * costs.verdict_bytes());
}

TEST(WireSizes, SemijoinTasksShipGoidsOnly) {
  const CostParams costs = skewed_costs();
  EXPECT_EQ(costs.semijoin_task_bytes(false), costs.goid_bytes + 8);
  EXPECT_EQ(costs.semijoin_task_bytes(true), 2 * costs.goid_bytes + 8);
  const std::vector<CheckTask> tasks = {
      // Direct task: origin == item.
      CheckTask{GOid{1}, LOid{DbId{2}, 3}, 0, 1, GOid{1}},
      // Cascaded follow-up: the origin GOid rides along.
      CheckTask{GOid{5}, LOid{DbId{2}, 4}, 1, 2, GOid{2}},
  };
  EXPECT_EQ(
      detail::semijoin_check_request_bytes(costs, tasks),
      costs.semijoin_task_bytes(false) + costs.semijoin_task_bytes(true));
}

TEST(WireSizes, BatchedCheckRequestsNeverExceedUnbatched) {
  // One frame header replaces the per-message header, and each task shrinks
  // from check_task_bytes to the GOid semijoin — so for any task count the
  // batched request is no larger at the Table-1 defaults.
  const CostParams costs;
  std::vector<CheckTask> tasks;
  for (std::size_t n = 1; n <= 8; ++n) {
    tasks.push_back(CheckTask{GOid{n}, LOid{DbId{2}, static_cast<std::uint32_t>(n)},
                              0, 1, GOid{n}});
    EXPECT_LE(kBatchHeaderBytes +
                  detail::semijoin_check_request_bytes(costs, tasks),
              detail::check_request_wire_bytes(costs, tasks.size()));
  }
}

TEST(WireSizes, InvolvedAttributesFollowQueryPaths) {
  const paper::UniversityExample example = paper::make_university();
  const auto involved =
      detail::involved_attributes(example.federation->schema(), paper::q1());
  // Student: name (target), advisor (nav), address (nav) => 3 attributes.
  ASSERT_TRUE(involved.count("Student"));
  EXPECT_EQ(involved.at("Student").size(), 3u);
  // Teacher: name (target), speciality (pred), department (nav).
  EXPECT_EQ(involved.at("Teacher").size(), 3u);
  // Address: city; Department: name.
  EXPECT_EQ(involved.at("Address").size(), 1u);
  EXPECT_EQ(involved.at("Department").size(), 1u);
}

TEST(WireSizes, CaProjectionSkipsMissingAttributes) {
  const paper::UniversityExample example = paper::make_university();
  const CostParams costs;
  const auto involved =
      detail::involved_attributes(example.federation->schema(), paper::q1());
  // DB3 ships Teacher (name prim + department ref, speciality missing) and
  // Department (name prim); per object: LOid + attrs.
  const Bytes teacher_obj = 16 + 32 + 16;     // loid + name + department ref
  const Bytes department_obj = 16 + 32;       // loid + name
  const Bytes expected = 2 * teacher_obj + 3 * department_obj;
  EXPECT_EQ(detail::ca_projected_bytes(*example.federation, DbId{3}, involved,
                                       costs),
            expected);
}

TEST(WireSizes, CaProjectionOmitsUninvolvedDatabases) {
  const paper::UniversityExample example = paper::make_university();
  const CostParams costs;
  GlobalQuery narrow;
  narrow.range_class = "Address";
  narrow.select("city");
  const auto involved =
      detail::involved_attributes(example.federation->schema(), narrow);
  EXPECT_EQ(detail::ca_projected_bytes(*example.federation, DbId{1}, involved,
                                       costs),
            0u)
      << "DB1 holds no Address constituent";
  EXPECT_GT(detail::ca_projected_bytes(*example.federation, DbId{2}, involved,
                                       costs),
            0u);
}

}  // namespace
}  // namespace isomer
