// The executors' message sizing (exec_common): row messages, check
// requests/responses, and the centralized approach's projected extents.
#include <gtest/gtest.h>

#include "isomer/core/exec_common.hpp"
#include "isomer/workload/paper_example.hpp"

namespace isomer {
namespace {

TEST(WireSizes, EmptyRowsCostNothing) {
  EXPECT_EQ(detail::rows_wire_bytes(CostParams{}, {}), 0u);
}

TEST(WireSizes, RowCarriesIdsTargetsAndUnknowns) {
  const CostParams costs;
  LocalRow row;
  row.root = LOid{DbId{1}, 1};
  row.entity = GOid{1};
  row.targets = {Value("Tony"), Value::null(), Value(GlobalRef{GOid{2}}),
                 Value(GlobalRefSet{{GOid{3}, GOid{4}}})};
  row.preds = {
      PredStatus{Truth::True, GOid{}, 0, false},
      PredStatus{Truth::Unknown, GOid{9}, 1, false},
  };
  // LOid+GOid header, one string target (S_a), null free, one GOid ref,
  // a two-element GOid set, and one unknown predicate (GOid + 8).
  const Bytes expected = (16 + 16) + 32 + 0 + 16 + 2 * 16 + (16 + 8);
  EXPECT_EQ(detail::rows_wire_bytes(costs, {row}), expected);
}

TEST(WireSizes, RowBytesScaleLinearly) {
  const CostParams costs;
  LocalRow row;
  row.targets = {Value(1)};
  row.preds = {PredStatus{Truth::True, GOid{}, 0, false}};
  const Bytes one = detail::rows_wire_bytes(costs, {row});
  EXPECT_EQ(detail::rows_wire_bytes(costs, {row, row, row}), 3 * one);
}

TEST(WireSizes, CheckMessages) {
  const CostParams costs;
  // Header + per-task LOid + GOid + predicate (2 attrs).
  EXPECT_EQ(detail::check_request_wire_bytes(costs, 0), costs.attr_bytes);
  EXPECT_EQ(detail::check_request_wire_bytes(costs, 3),
            costs.attr_bytes + 3 * (16 + 16 + 64));
  EXPECT_EQ(detail::check_response_wire_bytes(costs, 2),
            costs.attr_bytes + 2 * (16 + 8));
}

TEST(WireSizes, InvolvedAttributesFollowQueryPaths) {
  const paper::UniversityExample example = paper::make_university();
  const auto involved =
      detail::involved_attributes(example.federation->schema(), paper::q1());
  // Student: name (target), advisor (nav), address (nav) => 3 attributes.
  ASSERT_TRUE(involved.count("Student"));
  EXPECT_EQ(involved.at("Student").size(), 3u);
  // Teacher: name (target), speciality (pred), department (nav).
  EXPECT_EQ(involved.at("Teacher").size(), 3u);
  // Address: city; Department: name.
  EXPECT_EQ(involved.at("Address").size(), 1u);
  EXPECT_EQ(involved.at("Department").size(), 1u);
}

TEST(WireSizes, CaProjectionSkipsMissingAttributes) {
  const paper::UniversityExample example = paper::make_university();
  const CostParams costs;
  const auto involved =
      detail::involved_attributes(example.federation->schema(), paper::q1());
  // DB3 ships Teacher (name prim + department ref, speciality missing) and
  // Department (name prim); per object: LOid + attrs.
  const Bytes teacher_obj = 16 + 32 + 16;     // loid + name + department ref
  const Bytes department_obj = 16 + 32;       // loid + name
  const Bytes expected = 2 * teacher_obj + 3 * department_obj;
  EXPECT_EQ(detail::ca_projected_bytes(*example.federation, DbId{3}, involved,
                                       costs),
            expected);
}

TEST(WireSizes, CaProjectionOmitsUninvolvedDatabases) {
  const paper::UniversityExample example = paper::make_university();
  const CostParams costs;
  GlobalQuery narrow;
  narrow.range_class = "Address";
  narrow.select("city");
  const auto involved =
      detail::involved_attributes(example.federation->schema(), narrow);
  EXPECT_EQ(detail::ca_projected_bytes(*example.federation, DbId{1}, involved,
                                       costs),
            0u)
      << "DB1 holds no Address constituent";
  EXPECT_GT(detail::ca_projected_bytes(*example.federation, DbId{2}, involved,
                                       costs),
            0u);
}

}  // namespace
}  // namespace isomer
