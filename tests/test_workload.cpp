// The Table-2 workload generator: sampling conformance and realized
// statistics of materialized federations.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "isomer/common/error.hpp"
#include "isomer/federation/federation.hpp"
#include "isomer/store/database.hpp"
#include "isomer/workload/synth.hpp"

namespace isomer {
namespace {

TEST(ParamConfig, IsoRatioFormula) {
  ParamConfig config;
  config.n_db = 3;
  EXPECT_NEAR(config.iso_ratio(), 1.0 - 0.81, 1e-12);
  config.n_db = 1;
  EXPECT_EQ(config.iso_ratio(), 0.0);
  config.n_db = 8;
  EXPECT_NEAR(config.iso_ratio(), 1.0 - std::pow(0.9, 7), 1e-12);
}

TEST(ParamConfig, PerPredicateSelectivityCombinesToTable2) {
  ParamConfig config;
  for (int n = 1; n <= 3; ++n) {
    const double per = config.per_predicate_selectivity(n);
    EXPECT_NEAR(std::pow(per, n), std::pow(0.45, std::sqrt(double(n))),
                1e-12);
  }
  EXPECT_EQ(config.per_predicate_selectivity(0), 1.0);
}

TEST(DrawSample, RespectsRanges) {
  ParamConfig config;
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const SampleParams sample = draw_sample(config, rng);
    EXPECT_GE(sample.n_classes(), 1u);
    EXPECT_LE(sample.n_classes(), 4u);
    EXPECT_GE(sample.n_targets, 0);
    EXPECT_LE(sample.n_targets, 2);
    for (const auto& cls : sample.classes) {
      EXPECT_GE(cls.n_preds, 0);
      EXPECT_LE(cls.n_preds, 3);
      EXPECT_EQ(cls.dbs.size(), 3u);
      for (const auto& db : cls.dbs) {
        EXPECT_GE(db.n_objects, 5000);
        EXPECT_LE(db.n_objects, 6000);
      }
    }
  }
}

TEST(DrawSample, EveryPredicateAttributeExistsSomewhere) {
  ParamConfig config;
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const SampleParams sample = draw_sample(config, rng);
    for (const auto& cls : sample.classes)
      for (std::size_t j = 0; j < static_cast<std::size_t>(cls.n_preds);
           ++j) {
        bool somewhere = false;
        for (const auto& db : cls.dbs)
          for (const std::size_t present : db.present_preds)
            if (present == j) somewhere = true;
        EXPECT_TRUE(somewhere);
      }
  }
}

TEST(DrawSample, ForcedRootSelectivityPinsRoot) {
  ParamConfig config;
  config.forced_root_selectivity = 0.77;
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const SampleParams sample = draw_sample(config, rng);
    EXPECT_GE(sample.classes[0].n_preds, 1);
    EXPECT_DOUBLE_EQ(sample.classes[0].pred_selectivity, 0.77);
  }
}

TEST(Materialize, DeterministicInSeed) {
  ParamConfig config;
  config.n_objects = {40, 60};
  Rng rng(8);
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation a = materialize_sample(sample);
  const SynthFederation b = materialize_sample(sample);
  EXPECT_EQ(a.federation->goids().entity_count(),
            b.federation->goids().entity_count());
  EXPECT_EQ(a.query.predicates, b.query.predicates);
}

TEST(Materialize, FederationIsConsistentAndFullyMapped) {
  ParamConfig config;
  config.n_objects = {40, 60};
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    EXPECT_TRUE(synth.federation->check_consistency().empty());
  }
}

TEST(Materialize, ExtentSizesMatchDrawnCounts) {
  ParamConfig config;
  config.n_objects = {40, 60};
  Rng rng(10);
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  for (std::size_t k = 0; k < sample.n_classes(); ++k)
    for (std::size_t i = 0; i < sample.n_db; ++i) {
      const std::string cls = "C" + std::to_string(k + 1);
      const DbId db{static_cast<std::uint16_t>(i + 1)};
      EXPECT_EQ(synth.federation->db(db).extent(cls).size(),
                static_cast<std::size_t>(sample.classes[k].dbs[i].n_objects));
    }
}

TEST(Materialize, SchemaMissingAttributesFollowPresentPreds) {
  ParamConfig config;
  config.n_objects = {30, 40};
  Rng rng(11);
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  for (std::size_t k = 0; k < sample.n_classes(); ++k) {
    const GlobalClass& cls =
        synth.federation->schema().cls("C" + std::to_string(k + 1));
    for (std::size_t i = 0; i < sample.n_db; ++i) {
      const auto constituent =
          cls.constituent_in(DbId{static_cast<std::uint16_t>(i + 1)});
      ASSERT_TRUE(constituent.has_value());
      const auto missing = cls.missing_attributes(*constituent);
      const std::size_t expected_missing =
          static_cast<std::size_t>(sample.classes[k].n_preds) -
          sample.classes[k].dbs[i].present_preds.size();
      EXPECT_EQ(missing.size(), expected_missing);
    }
  }
}

TEST(Materialize, QueryResolvesAgainstGlobalSchema) {
  ParamConfig config;
  config.n_objects = {30, 40};
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const SampleParams sample = draw_sample(config, rng);
    const SynthFederation synth = materialize_sample(sample);
    const ClassLookup lookup = synth.federation->schema().lookup();
    for (const Predicate& pred : synth.query.predicates)
      EXPECT_NO_THROW(
          (void)resolve_path(lookup, synth.query.range_class, pred.path));
    for (const PathExpr& target : synth.query.targets)
      EXPECT_NO_THROW(
          (void)resolve_path(lookup, synth.query.range_class, target));
  }
}

TEST(Materialize, IsomerPairsNeverShareADatabase) {
  ParamConfig config;
  config.n_db = 5;
  config.n_objects = {30, 40};
  Rng rng(13);
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  const GoidTable& goids = synth.federation->goids();
  for (std::size_t e = 0; e < goids.entity_count(); ++e) {
    const auto& isomers =
        goids.isomers_of(GOid{static_cast<std::uint64_t>(e + 1)});
    EXPECT_LE(isomers.size(), 2u) << "Table 1: N_iso = 2 (pairs)";
    if (isomers.size() == 2) EXPECT_NE(isomers[0].db, isomers[1].db);
  }
}

TEST(Materialize, RealizedIsomerismTracksRiso) {
  ParamConfig config;
  config.n_db = 4;
  config.n_objects = {400, 500};
  Rng rng(14);
  const SampleParams sample = draw_sample(config, rng);
  const SynthFederation synth = materialize_sample(sample);
  const GoidTable& goids = synth.federation->goids();
  std::uint64_t paired_objects = 0, total_objects = 0;
  for (std::size_t e = 0; e < goids.entity_count(); ++e) {
    const auto& isomers =
        goids.isomers_of(GOid{static_cast<std::uint64_t>(e + 1)});
    total_objects += isomers.size();
    if (isomers.size() > 1) paired_objects += isomers.size();
  }
  EXPECT_NEAR(static_cast<double>(paired_objects) /
                  static_cast<double>(total_objects),
              sample.iso_ratio, 0.05);
}

TEST(Materialize, RejectsDegenerateSamples) {
  SampleParams empty;
  empty.n_db = 2;
  EXPECT_THROW((void)materialize_sample(empty), ContractViolation);
}

// ---- missingness knobs (bench_impute, docs/IMPUTATION.md) --------------

/// FNV-1a over a full textual dump of the generated universe: every
/// database in DbId order, every class in schema order, every object in
/// extent (insertion) order with all stored values. Any byte the generator
/// moves — a value, a null, an ordering — moves the digest.
std::uint64_t federation_digest(const Federation& fed) {
  std::ostringstream os;
  for (const DbId id : fed.db_ids()) {
    const ComponentDatabase& db = fed.db(id);
    os << "db" << id.value() << '{';
    for (const ClassDef& cls : db.schema().classes()) {
      os << cls.name() << ':';
      for (const Object& obj : db.extent(cls.name()).objects())
        os << obj << ';';
    }
    os << '}';
  }
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : os.str()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(MissingnessKnobs, DefaultsAreByteIdenticalGolden) {
  // forced_missing_rate / missing_mechanism must be invisible at their
  // defaults: the R_m override runs after every draw (the RNG stream is
  // untouched) and MCAR takes the original injection path call for call.
  // This golden pins the generated universe of the default configuration;
  // it may only change when the generator itself deliberately does.
  ParamConfig config;
  config.n_objects = {30, 40};
  Rng rng(2026);
  const SampleParams sample = draw_sample(config, rng);
  EXPECT_EQ(sample.missing_mechanism, MissingMechanism::MCAR);
  const SynthFederation synth = materialize_sample(sample);
  EXPECT_EQ(federation_digest(*synth.federation), 0x8e46492e7e7c65c7ULL);
}

TEST(MissingnessKnobs, ForcedMissingRatePinsRmAndNothingElse) {
  ParamConfig config;
  config.n_objects = {30, 40};
  ParamConfig forced = config;
  forced.forced_missing_rate = 0.3;

  Rng rng_a(4242), rng_b(4242);
  const SampleParams plain = draw_sample(config, rng_a);
  const SampleParams pinned = draw_sample(forced, rng_b);

  // The override runs after the draws, so both streams end in lockstep...
  EXPECT_EQ(rng_a(), rng_b());
  // ...and every drawn figure except R_m is identical.
  ASSERT_EQ(pinned.classes.size(), plain.classes.size());
  EXPECT_EQ(pinned.n_targets, plain.n_targets);
  EXPECT_EQ(pinned.materialize_seed, plain.materialize_seed);
  for (std::size_t k = 0; k < plain.classes.size(); ++k) {
    const auto& p = pinned.classes[k];
    const auto& q = plain.classes[k];
    EXPECT_EQ(p.n_preds, q.n_preds);
    EXPECT_EQ(p.pred_selectivity, q.pred_selectivity);
    EXPECT_EQ(p.ref_ratio, q.ref_ratio);
    ASSERT_EQ(p.dbs.size(), q.dbs.size());
    for (std::size_t i = 0; i < q.dbs.size(); ++i) {
      EXPECT_EQ(p.dbs[i].n_objects, q.dbs[i].n_objects);
      EXPECT_EQ(p.dbs[i].present_preds, q.dbs[i].present_preds);
      EXPECT_EQ(p.dbs[i].extra_missing, 0.3);
    }
  }
}

TEST(MissingnessKnobs, MarConcentratesNullsInTheLowerCovariateHalf) {
  // Under mech=mar the injection rate doubles for objects in x0's lower
  // half and drops to zero in the upper half: every injected null must sit
  // on a low-covariate object. Present predicate attributes are only ever
  // null through the injection, so the stratified null counts observe the
  // mechanism directly.
  ParamConfig config;
  config.n_objects = {200, 300};
  config.forced_missing_rate = 0.3;
  config.missing_mechanism = MissingMechanism::MAR;
  Rng rng(7);
  const SampleParams sample = draw_sample(config, rng);
  EXPECT_EQ(sample.missing_mechanism, MissingMechanism::MAR);
  const SynthFederation synth = materialize_sample(sample);

  std::uint64_t low_nulls = 0, high_nulls = 0;
  for (const DbId id : synth.federation->db_ids()) {
    const ComponentDatabase& db = synth.federation->db(id);
    for (const ClassDef& cls : db.schema().classes()) {
      const auto covariate = cls.find_attribute("x0");
      ASSERT_TRUE(covariate.has_value());
      std::vector<std::size_t> pred_slots;
      for (std::size_t a = 0; a < cls.attribute_count(); ++a)
        if (cls.attribute(a).name[0] == 'p')
          pred_slots.push_back(a);
      for (const Object& obj : db.extent(cls.name()).objects()) {
        const bool low = obj.value(*covariate).as_int() < 500;
        for (const std::size_t a : pred_slots)
          if (obj.value(a).is_null()) (low ? low_nulls : high_nulls) += 1;
      }
    }
  }
  EXPECT_GT(low_nulls, 0u) << "MAR injected nothing at R_m = 0.3";
  EXPECT_EQ(high_nulls, 0u)
      << "MAR injected into the upper covariate half";
}

}  // namespace
}  // namespace isomer
