// Schema check for the "isomer-trace-v1" JSONL contract (docs/TRACING.md).
//
// Runs `<bench binary> --quick --trace=<tmp> [extra args...]` and validates
// every emitted line against the documented record schemas: one header
// record first, then span records, then one metrics trailer. Registered in
// ctest as
//   trace_schema_check $<TARGET_FILE:bench_fig9>
//   trace_schema_check_serve $<TARGET_FILE:bench_serve> ... --certcache=on
// so a drifted encoder (or a drifted document) fails the suite, not a
// downstream consumer. Without extra args the run must cover the CA/BL/PL
// strategies (the fig9 sweep contract); with --certcache=on among the extra
// args it must emit at least one Phase::Cert span (the certificate-cache
// markers of docs/CONDITIONS.md); with a 'tenant:' clause among them it
// must emit serve-phase serve.tenant/<id> attribution spans
// (docs/TRACING.md); with an enabled --impute spec among them it must emit
// impute-phase im.* spans (the IM strategy's filter/discharge markers of
// docs/IMPUTATION.md). Deliberately dependency-free: a minimal
// recursive JSON parser below, no gtest, no external libraries.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

namespace {

// ---- A minimal JSON value + recursive-descent parser (objects, arrays,
// strings, numbers, booleans, null — everything the trace format uses).

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      data = nullptr;

  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(data);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(data);
  }
  [[nodiscard]] double number() const { return std::get<double>(data); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(data);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(data);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses one complete JSON value; returns false on any syntax error or
  /// trailing garbage.
  bool parse(JsonValue& out) {
    pos_ = 0;
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word, JsonValue& out, JsonValue value) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    out = std::move(value);
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"': {
        std::string s;
        if (!string(s)) return false;
        out.data = std::move(s);
        return true;
      }
      case 't':
        return literal("true", out, JsonValue{true});
      case 'f':
        return literal("false", out, JsonValue{false});
      case 'n':
        return literal("null", out, JsonValue{nullptr});
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out) {
    if (!consume('{')) return false;
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) {
      out.data = std::move(obj);
      return true;
    }
    while (true) {
      std::string key;
      skip_ws();
      if (!string(key)) return false;
      if (!consume(':')) return false;
      JsonValue member;
      if (!value(member)) return false;
      (*obj)[key] = std::move(member);
      if (consume(',')) continue;
      if (consume('}')) break;
      return false;
    }
    out.data = std::move(obj);
    return true;
  }

  bool array(JsonValue& out) {
    if (!consume('[')) return false;
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) {
      out.data = std::move(arr);
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      arr->push_back(std::move(element));
      if (consume(',')) continue;
      if (consume(']')) break;
      return false;
    }
    out.data = std::move(arr);
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // decoded fidelity is not under test here
            out += '?';
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out.data = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- Schema checks.

int failures = 0;

void fail(std::size_t line_no, const std::string& message,
          const std::string& line) {
  std::fprintf(stderr, "line %zu: %s\n  %s\n", line_no, message.c_str(),
               line.c_str());
  ++failures;
}

bool has_number(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.is_number();
}

bool has_string(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it != obj.end() && it->second.is_string();
}

void check_header(const JsonObject& obj, std::size_t line_no,
                  const std::string& line) {
  if (!has_string(obj, "format") ||
      obj.at("format").string() != "isomer-trace-v1")
    fail(line_no, "header 'format' must be \"isomer-trace-v1\"", line);
  if (!has_string(obj, "tool")) fail(line_no, "header needs 'tool'", line);
  for (const char* key : {"jobs", "samples", "scale", "seed"})
    if (!has_number(obj, key))
      fail(line_no, std::string("header needs numeric '") + key + "'", line);
  if (has_number(obj, "jobs") && obj.at("jobs").number() < 1)
    fail(line_no, "header 'jobs' must report the effective thread count",
         line);
}

void check_span(const JsonObject& obj, std::size_t line_no,
                const std::string& line, std::set<std::string>& strategies,
                std::set<std::string>& phases) {
  static const std::set<std::string> kStrategies = {
      "CA", "BL", "PL", "BLS", "PLS", "HY", "IM"};
  static const std::set<std::string> kPhases = {
      "setup", "O",    "I",    "P",      "transfer",
      "fault", "plan", "cert", "serve",  "impute"};
  for (const char* key : {"strategy", "phase", "site", "step"})
    if (!has_string(obj, key))
      fail(line_no, std::string("span needs string '") + key + "'", line);
  for (const char* key :
       {"query", "start_ns", "end_ns", "bytes", "messages", "objects_in",
        "objects_out", "certs_resolved", "certs_eliminated", "trial", "x"})
    if (!has_number(obj, key))
      fail(line_no, std::string("span needs numeric '") + key + "'", line);
  for (const char* key : {"figure", "x_name"})
    if (!has_string(obj, key))
      fail(line_no, std::string("span needs string '") + key + "'", line);

  if (has_string(obj, "strategy")) {
    if (kStrategies.count(obj.at("strategy").string()) == 0)
      fail(line_no, "unknown 'strategy'", line);
    else
      strategies.insert(obj.at("strategy").string());
  }
  if (has_string(obj, "phase")) {
    if (kPhases.count(obj.at("phase").string()) == 0)
      fail(line_no, "unknown 'phase'", line);
    else
      phases.insert(obj.at("phase").string());
  }
  if (has_number(obj, "start_ns") && has_number(obj, "end_ns") &&
      obj.at("end_ns").number() < obj.at("start_ns").number())
    fail(line_no, "span ends before it starts", line);
  // Serve-phase spans are the server's tenant-attribution markers: their
  // step names the traffic class as "serve.tenant/<id>".
  if (has_string(obj, "phase") && obj.at("phase").string() == "serve" &&
      has_string(obj, "step") &&
      obj.at("step").string().rfind("serve.tenant/", 0) != 0)
    fail(line_no, "serve-phase span step must start with 'serve.tenant/'",
         line);
  // Impute-phase spans are the IM strategy's markers — the dispatch
  // filter's im.impute/<n> / im.decline/<n>, and the global site's
  // im.certify / im.discharge summaries (docs/IMPUTATION.md).
  if (has_string(obj, "phase") && obj.at("phase").string() == "impute" &&
      has_string(obj, "step") &&
      obj.at("step").string().rfind("im.", 0) != 0)
    fail(line_no, "impute-phase span step must start with 'im.'", line);

  const auto meter = obj.find("meter");
  if (meter == obj.end() || !meter->second.is_object()) {
    fail(line_no, "span needs object 'meter'", line);
    return;
  }
  for (const char* key : {"objects_scanned", "objects_fetched", "comparisons",
                          "table_probes", "prim_slots", "ref_slots"})
    if (!has_number(meter->second.object(), key))
      fail(line_no, std::string("meter needs numeric '") + key + "'", line);
}

void check_metrics(const JsonObject& obj, std::size_t line_no,
                   const std::string& line) {
  const auto counters = obj.find("counters");
  if (counters == obj.end() || !counters->second.is_object())
    fail(line_no, "metrics needs object 'counters'", line);
  const auto histograms = obj.find("histograms");
  if (histograms == obj.end() || !histograms->second.is_object())
    fail(line_no, "metrics needs object 'histograms'", line);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <bench-binary> [bench args...]\n",
                 argv[0]);
    return 2;
  }
  // Per-invocation scratch names (binary + FNV-1a of the extra args) so
  // multiple registrations — including several against the same binary —
  // can run under ctest -j from the same working directory without
  // clobbering each other.
  const std::string binary = argv[1];
  std::string base = binary.substr(binary.find_last_of("/\\") + 1);
  bool require_cert_spans = false;
  bool require_tenant_spans = false;
  bool require_impute_spans = false;
  std::string extra;
  std::uint64_t arg_hash = 1469598103934665603ull;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--certcache=", 0) == 0 && arg != "--certcache=off")
      require_cert_spans = true;
    if (arg.find("tenant:") != std::string::npos) require_tenant_spans = true;
    if (arg.rfind("--impute=", 0) == 0 && arg != "--impute=off")
      require_impute_spans = true;
    extra += " " + arg;
    for (const char c : arg) {
      arg_hash ^= static_cast<unsigned char>(c);
      arg_hash *= 1099511628211ull;
    }
  }
  if (argc > 2) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".%016llx",
                  static_cast<unsigned long long>(arg_hash));
    base += suffix;
  }
  const std::string trace_path = "trace_schema_check." + base + ".jsonl";
  std::string command =
      std::string("\"") + binary + "\" --quick --trace=" + trace_path + extra;
  command += " > trace_schema_check." + base + ".out 2>&1";
  if (std::system(command.c_str()) != 0) {
    std::fprintf(stderr, "bench run failed: %s\n", command.c_str());
    return 1;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "bench run produced no %s\n", trace_path.c_str());
    return 1;
  }

  std::size_t line_no = 0, spans = 0;
  bool saw_header = false, saw_metrics = false;
  std::set<std::string> strategies;
  std::set<std::string> phases;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      fail(line_no, "blank line in JSONL stream", line);
      continue;
    }
    JsonValue value;
    if (!Parser(line).parse(value) || !value.is_object()) {
      fail(line_no, "not a JSON object", line);
      continue;
    }
    const JsonObject& obj = value.object();
    if (!has_string(obj, "type")) {
      fail(line_no, "record needs string 'type'", line);
      continue;
    }
    const std::string& type = obj.at("type").string();
    if (saw_metrics) fail(line_no, "record after the metrics trailer", line);
    if (type == "header") {
      if (line_no != 1) fail(line_no, "header must be line 1", line);
      saw_header = true;
      check_header(obj, line_no, line);
    } else if (type == "span") {
      if (!saw_header) fail(line_no, "span before header", line);
      ++spans;
      check_span(obj, line_no, line, strategies, phases);
    } else if (type == "metrics") {
      saw_metrics = true;
      check_metrics(obj, line_no, line);
    } else {
      fail(line_no, "unknown record type '" + type + "'", line);
    }
  }

  if (!saw_header) {
    std::fprintf(stderr, "no header record\n");
    ++failures;
  }
  if (!saw_metrics) {
    std::fprintf(stderr, "no metrics trailer\n");
    ++failures;
  }
  if (spans == 0) {
    std::fprintf(stderr, "no span records\n");
    ++failures;
  }
  // The strategy-coverage contract is the fig9 sweep's (the default
  // registration); serve pools pick strategies per submission, so extra-arg
  // runs only owe the schema itself — plus cert spans when asked.
  if (argc == 2)
    for (const char* strategy : {"CA", "BL", "PL"})
      if (strategies.count(strategy) == 0) {
        std::fprintf(stderr, "no spans from strategy %s\n", strategy);
        ++failures;
      }
  if (require_cert_spans && phases.count("cert") == 0) {
    std::fprintf(stderr, "--certcache=on run emitted no cert-phase spans\n");
    ++failures;
  }
  if (require_tenant_spans && phases.count("serve") == 0) {
    std::fprintf(stderr,
                 "tenant-bearing run emitted no serve.tenant/ spans\n");
    ++failures;
  }
  if (require_impute_spans && phases.count("impute") == 0) {
    std::fprintf(stderr, "--impute run emitted no impute-phase im.* spans\n");
    ++failures;
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d schema violation(s) in %zu line(s)\n", failures,
                 line_no);
    return 1;
  }
  std::printf("%zu span lines OK (%zu strategies)\n", spans,
              strategies.size());
  return 0;
}
