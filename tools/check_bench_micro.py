#!/usr/bin/env python3
"""Compare a bench_micro JSON run against the checked-in baseline.

Usage:
    build/bench/bench_micro \
        --benchmark_filter='PredicateEval(Row|Columnar)|GoidProbe' \
        --benchmark_format=json --benchmark_out=now.json
    python3 tools/check_bench_micro.py now.json

Two kinds of checks, from tools/bench_micro_baseline.json:

  * ratios — machine-relative invariants (columnar vs row predicate
    evaluation, batched vs unordered_map GOid probes). These are the
    load-bearing performance contracts of docs/PERFORMANCE.md and always
    FAIL the run when violated, on any machine.
  * absolutes — items_per_second floors recorded on the baseline machine.
    Other machines differ, so by default a miss only WARNs; pass --strict
    to make absolute misses fail too (e.g. on the machine that recorded
    the baseline, or in a pinned CI runner).

Exit status: 0 when every enforced check passes, 1 otherwise, 2 on usage
errors. Re-record the baseline with --update after an intentional change.
"""

import argparse
import json
import sys


def load_rates(path):
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate:
            rates[bench["name"]] = float(rate)
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="bench_micro --benchmark_out JSON")
    parser.add_argument("--baseline", default="tools/bench_micro_baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="absolute floor = tolerance * baseline rate (default 0.5)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="absolute misses fail instead of warning",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline's absolute rates from this run",
    )
    args = parser.parse_args()

    rates = load_rates(args.results)
    if not rates:
        print(f"error: no rate-carrying benchmarks in {args.results}",
              file=sys.stderr)
        return 2
    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.update:
        baseline["absolutes"] = {
            name: rate for name, rate in sorted(rates.items())
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"baseline absolutes rewritten from {args.results}")
        return 0

    failed = False

    for check in baseline.get("ratios", []):
        num, den = check["numerator"], check["denominator"]
        if num not in rates or den not in rates:
            print(f"SKIP  ratio {num} / {den}: benchmark missing from run "
                  f"(filter too narrow?)")
            continue
        ratio = rates[num] / rates[den]
        ok = ratio >= check["min"]
        print(f"{'PASS' if ok else 'FAIL'}  {num} / {den} = {ratio:.2f}x "
              f"(need >= {check['min']}x) — {check['why']}")
        failed = failed or not ok

    for name, expected in baseline.get("absolutes", {}).items():
        if name not in rates:
            continue
        floor = expected * args.tolerance
        ok = rates[name] >= floor
        verdict = "PASS" if ok else ("FAIL" if args.strict else "WARN")
        print(f"{verdict}  {name}: {rates[name] / 1e6:.2f} M/s "
              f"(floor {floor / 1e6:.2f} M/s = {args.tolerance} x baseline)")
        if args.strict:
            failed = failed or not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
