#!/usr/bin/env python3
"""Keep the documentation honest: links resolve, paths exist, flags cataloged.

Usage:
    python3 tools/check_docs.py [--root /path/to/repo]

Three checks over README.md, EXPERIMENTS.md, ROADMAP.md and docs/*.md:

  * cross-links — every relative markdown link `[text](target)` points at a
    file that exists, and when it carries a `#fragment` the target file has
    a heading whose GitHub anchor slug matches. Catches renamed docs and
    stale section anchors.
  * source paths — every backtick-quoted `src/…`, `bench/…`, `tests/…` or
    `tools/…` path names a real file or directory. Catches docs referring
    to modules that moved.
  * harness flags — every flag the shared bench harness parses
    (`bench/harness.hpp`) appears in README.md's canonical
    "Harness flags" table, so there is exactly one place flags live and
    the other docs can link to it.
  * required docs — every subsystem document other docs rely on exists
    (a rename or deletion fails here, not in a reader's browser).

Registered as the `check_docs` ctest; exit 0 clean, 1 on any failure.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
# Backtick-quoted repo paths: `src/isomer/core/plan.hpp`, `bench/…`, a
# trailing `/` marks a directory reference.
PATH_RE = re.compile(r"`((?:src|bench|tests|tools)/[A-Za-z0-9_./-]*[A-Za-z0-9_/-])`")
FLAG_VALUE_RE = re.compile(r'value\("(--[a-z-]+)="\)')
FLAG_BARE_RE = re.compile(r'arg == "(--[a-z-]+)"')

# Subsystem documents the rest of the tree points readers at (source
# comments included, which the link check cannot see).
REQUIRED_DOCS = (
    "docs/ARCHITECTURE.md",
    "docs/CONDITIONS.md",
    "docs/FAULTS.md",
    "docs/IMPUTATION.md",
    "docs/PERFORMANCE.md",
    "docs/PLANNING.md",
    "docs/SERVING.md",
    "docs/TRACING.md",
)


def github_anchor(heading):
    """GitHub's heading → anchor slug (backticks stripped, spaces → '-')."""
    text = heading.strip().lstrip("#").strip().replace("`", "")
    text = text.lower()
    text = re.sub(r"[^a-z0-9 _-]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        slugs = set()
        in_fence = False
        for line in path.read_text().splitlines():
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
            elif not in_fence and re.match(r"#{1,6} ", line):
                slugs.add(github_anchor(line))
        cache[path] = slugs
    return cache[path]


def doc_files(root):
    docs = [root / "README.md", root / "EXPERIMENTS.md", root / "ROADMAP.md"]
    docs += sorted((root / "docs").glob("*.md"))
    return [d for d in docs if d.exists()]


def check_links(root, failures):
    for doc in doc_files(root):
        in_fence = False
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                base, _, fragment = target.partition("#")
                dest = (doc.parent / base).resolve() if base else doc
                where = f"{doc.relative_to(root)}:{lineno}"
                if not dest.exists():
                    failures.append(f"{where}: broken link -> {target}")
                elif fragment and dest.suffix == ".md":
                    if fragment not in anchors_of(dest):
                        failures.append(
                            f"{where}: no heading for anchor #{fragment} "
                            f"in {dest.relative_to(root)}"
                        )


def check_paths(root, failures):
    for doc in doc_files(root):
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for ref in PATH_RE.findall(line):
                if not (root / ref).exists():
                    failures.append(
                        f"{doc.relative_to(root)}:{lineno}: "
                        f"path does not exist -> {ref}"
                    )


def harness_flags(root):
    text = (root / "bench" / "harness.hpp").read_text()
    return sorted(set(FLAG_VALUE_RE.findall(text)) | set(FLAG_BARE_RE.findall(text)))


def check_flags(root, failures):
    readme = (root / "README.md").read_text()
    match = re.search(r"^### Harness flags$(.*?)^#{1,3} ", readme, re.M | re.S)
    if not match:
        failures.append('README.md: missing "### Harness flags" section')
        return
    table = match.group(1)
    for flag in harness_flags(root):
        if f"`{flag}" not in table:
            failures.append(
                f"README.md: harness flag {flag} (parsed in bench/harness.hpp) "
                f"missing from the Harness flags table"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=pathlib.Path(__file__).resolve().parent.parent,
        type=pathlib.Path,
        help="repository root (default: parent of tools/)",
    )
    args = parser.parse_args()
    root = args.root.resolve()

    failures = []
    check_links(root, failures)
    check_paths(root, failures)
    check_flags(root, failures)
    for required in REQUIRED_DOCS:
        if not (root / required).exists():
            failures.append(f"{required}: required subsystem doc is missing")

    docs = len(doc_files(root))
    flags = len(harness_flags(root))
    if failures:
        for failure in failures:
            print(f"FAIL  {failure}")
        print(f"\n{len(failures)} problem(s) across {docs} docs")
        return 1
    print(f"PASS  {docs} docs: links resolve, referenced paths exist, "
          f"all {flags} harness flags cataloged in README.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
